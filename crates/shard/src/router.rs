//! The router reactor: one thread multiplexing many JSON-lines clients
//! onto N backend engine shards.
//!
//! The router speaks the engine's exact protocol on its client side, so
//! clients cannot tell a router from a single engine. Internally it is
//! the same reactor shape as `freqywm-net` (one [`Poller`], level
//! triggered, nothing blocks), extended with an *outbound* side:
//!
//! * **clients** — accepted from the listener, framed with the shared
//!   [`LineFramer`], responses kept in per-client ordered slots so
//!   pipelined requests answer in request order even when they fan out
//!   to different shards;
//! * **backends** — one multiplexed, pipelined connection per shard.
//!   Each forwarded request is pushed onto that backend's in-flight
//!   FIFO; the engine's `Session` answers in order per connection, so
//!   FIFO position is the whole correlation protocol. Dead backends
//!   get reconnect-with-backoff (a connector thread per attempt, never
//!   the reactor thread) and idle ones get periodic `metrics` health
//!   probes;
//! * **routing** — [`RouteInfo`] from the proto layer: tenant-keyed ops
//!   hash onto one shard ([`ShardMap::shard_of`]), `dispute` routes
//!   only when both tenants share a shard (else a protocol error),
//!   `metrics` fans out to every live shard and merges
//!   ([`aggregate_shard_metrics`]) with the router's own shard map
//!   attached, `shutdown` fans out and then drains the whole tier;
//! * **drain** — a `shutdown` op stops the listener, shuts every
//!   backend down, acks the client once all backends acked, flushes and
//!   exits. SIGTERM/SIGINT (when enabled) drain the *router only*:
//!   in-flight work finishes, clients close, backends stay up.

use crate::ring::ShardMap;
use crate::signal;
use freqywm_net::http::HttpConn;
use freqywm_net::{Backend, Event, Interest, LineEvent, LineFramer, Poller};
use freqywm_obs::prom::{PromKind, PromText};
use freqywm_service::metrics::{
    aggregate_shard_metrics, latency_to_prom, LatencyHistogram, ShardMetricsPiece,
};
use freqywm_service::proto::{
    err_response, frame_too_large_response, id_echo, json, route_of, token_eq, RouteInfo,
};
use json::Value;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;
const TOKEN_METRICS_LISTENER: u64 = u64::MAX - 2;
const TOKEN_BACKEND_BASE: u64 = 1 << 40;

/// Scrape connections that sent no complete request within this window
/// are reaped (they never wait on jobs, so a fixed bound is safe).
const HTTP_IDLE: Duration = Duration::from_secs(10);

const READ_CHUNK: usize = 16 * 1024;
const READ_BUDGET: usize = 4 * READ_CHUNK;
const COMPACT_THRESHOLD: usize = 64 * 1024;
/// Backend response frames (metrics blobs) may exceed client request
/// caps; a response larger than this means the stream lost framing.
const BACKEND_MAX_FRAME: usize = 8 << 20;
/// Upper bound on one poller wait, so signal flags and timers are
/// observed promptly even if a wake byte is lost.
const MAX_POLL: Duration = Duration::from_millis(500);

/// Router tier configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend engine addresses; position in the vec is the shard id
    /// and must match each backend's `--shard-id i/N`.
    pub shards: Vec<String>,
    /// Optional standby address per shard (aligned with `shards`; a
    /// short vec is padded with `None`). When health handling declares
    /// a primary dead, the router dials the standby, issues `promote`,
    /// and redirects the shard's traffic — requests arriving during
    /// the switch are parked, not errored.
    pub standbys: Vec<Option<String>>,
    /// Concurrent client connection cap.
    pub max_conns: usize,
    /// Client input frame cap (same semantics as the engine serve).
    pub max_frame: usize,
    /// Slow-client eviction bound on unread response bytes.
    pub max_write_buffer: usize,
    /// Bound on a drain (shutdown op or SIGTERM) before remaining
    /// connections are closed forcibly.
    pub drain_timeout: Duration,
    /// Idle gap after which a connected backend gets a `metrics`
    /// health probe.
    pub probe_interval: Duration,
    /// Reconnect backoff range for dead backends.
    pub reconnect_min: Duration,
    pub reconnect_max: Duration,
    /// Per-attempt bound on dialing a backend (connector thread).
    pub connect_timeout: Duration,
    /// How long requests may park while a standby promotion is in
    /// progress before they error out (promotion itself keeps
    /// retrying past this).
    pub failover_timeout: Duration,
    /// Client-side shared-secret auth (`hello` op / per-request
    /// `auth`), mirroring `freqywm serve --auth-token`.
    pub auth_token: Option<String>,
    /// Token the router presents to backends (their `--auth-token`),
    /// sent as a `hello` op right after each (re)connect.
    pub shard_auth_token: Option<String>,
    /// Poller backend selection.
    pub backend: Backend,
    /// Install SIGTERM/SIGINT handlers that drain the router (the CLI
    /// turns this on; embedded/test routers leave it off).
    pub handle_signals: bool,
}

impl RouterConfig {
    pub fn new(shards: Vec<String>) -> Self {
        RouterConfig {
            shards,
            standbys: Vec::new(),
            max_conns: 1024,
            max_frame: 1 << 20,
            max_write_buffer: 4 << 20,
            drain_timeout: Duration::from_secs(10),
            probe_interval: Duration::from_secs(2),
            reconnect_min: Duration::from_millis(100),
            reconnect_max: Duration::from_secs(3),
            connect_timeout: Duration::from_secs(1),
            failover_timeout: Duration::from_secs(10),
            auth_token: None,
            shard_auth_token: None,
            backend: Backend::Auto,
            handle_signals: false,
        }
    }
}

/// Runs the router until a `shutdown` op completes its tier drain (or a
/// drain signal, when enabled). The listener must already be bound —
/// callers announce the address themselves.
pub fn run_router(listener: TcpListener, config: RouterConfig) -> io::Result<()> {
    run_router_with_metrics(listener, None, config)
}

/// [`run_router`] with an optional second listener answering HTTP
/// `GET /metrics` with the router's tier exposition (router counters,
/// per-shard role / log_seq / replication lag / RTT) — `freqywm router
/// --metrics-listen`. The drain closes both listeners.
pub fn run_router_with_metrics(
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    config: RouterConfig,
) -> io::Result<()> {
    if config.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one --shard backend",
        ));
    }
    let mut router = Router::new(listener, metrics_listener, config)?;
    let result = router.run();
    signal::detach_drain_handler();
    result
}

enum CSlot {
    Ready(String),
    Pending,
}

struct ClientConn {
    id: u64,
    stream: TcpStream,
    framer: LineFramer,
    out_buf: Vec<u8>,
    out_pos: usize,
    slots: VecDeque<CSlot>,
    base: usize,
    eof: bool,
    failed: bool,
    authed: bool,
    interest: Interest,
}

impl ClientConn {
    fn new(id: u64, stream: TcpStream, max_frame: usize) -> Self {
        ClientConn {
            id,
            stream,
            framer: LineFramer::new(max_frame),
            out_buf: Vec::new(),
            out_pos: 0,
            slots: VecDeque::new(),
            base: 0,
            eof: false,
            failed: false,
            authed: false,
            interest: Interest::READ,
        }
    }

    fn push_ready(&mut self, resp: String) {
        self.slots.push_back(CSlot::Ready(resp));
    }

    /// Reserves the next in-order response slot; returns its absolute
    /// sequence number.
    fn push_pending(&mut self) -> usize {
        let seq = self.base + self.slots.len();
        self.slots.push_back(CSlot::Pending);
        seq
    }

    fn resolve(&mut self, seq: usize, resp: String) {
        let idx = seq - self.base;
        self.slots[idx] = CSlot::Ready(resp);
    }

    /// Moves the maximal ready prefix into the write buffer.
    fn queue_ready(&mut self) {
        while matches!(self.slots.front(), Some(CSlot::Ready(_))) {
            let Some(CSlot::Ready(resp)) = self.slots.pop_front() else {
                unreachable!("front checked above");
            };
            self.base += 1;
            self.out_buf.extend_from_slice(resp.as_bytes());
            self.out_buf.push(b'\n');
        }
    }

    fn buffered(&self) -> usize {
        self.out_buf.len() - self.out_pos
    }

    fn settled(&self) -> bool {
        self.slots.is_empty() && self.buffered() == 0
    }
}

/// One request in flight on a backend connection, in FIFO order.
enum Pending {
    /// Forward the response line verbatim to this client slot.
    Client {
        client: u64,
        seq: usize,
        /// Prerendered id echo, for synthesising an error if the
        /// backend dies before answering.
        id_part: String,
    },
    /// One piece of a fan-out (`metrics` / `shutdown`).
    Fanout { fanout: u64 },
    /// Router-internal health probe: a *successful* response (and only
    /// that) proves the backend healthy and resets its reconnect
    /// backoff — an auth-error reply must do neither.
    Probe,
    /// Router-internal backend auth hello: consumed without touching
    /// health (the probe that follows it is the judge).
    Hello,
    /// `promote` issued during failover: the ack completes the
    /// promotion and releases this shard's parked requests.
    Promote,
}

/// A tenant request held while its shard fails over to a standby
/// (primary dead, promotion in flight) instead of erroring: flushed to
/// the promoted backend on ack, errored if promotion fails or the
/// failover deadline passes.
struct ParkedRequest {
    client: u64,
    seq: usize,
    id_part: String,
    line: String,
}

/// Bound on parked requests per shard during failover; beyond it new
/// arrivals error immediately (backpressure, not unbounded memory).
const MAX_PARKED: usize = 4096;

struct BackendConn {
    stream: TcpStream,
    framer: LineFramer,
    out_buf: Vec<u8>,
    out_pos: usize,
    /// Each entry is (send time, correlation); the send time feeds the
    /// per-backend latency histogram when the FIFO response arrives.
    inflight: VecDeque<(Instant, Pending)>,
    eof: bool,
    failed: bool,
    last_activity: Instant,
    interest: Interest,
}

impl BackendConn {
    fn new(stream: TcpStream) -> Self {
        BackendConn {
            stream,
            framer: LineFramer::new(BACKEND_MAX_FRAME),
            out_buf: Vec::new(),
            out_pos: 0,
            inflight: VecDeque::new(),
            eof: false,
            failed: false,
            last_activity: Instant::now(),
            interest: Interest::READ,
        }
    }

    fn buffered(&self) -> usize {
        self.out_buf.len() - self.out_pos
    }
}

struct BackendSlot {
    addr: String,
    conn: Option<BackendConn>,
    /// A connector thread is dialing; don't spawn another.
    connecting: bool,
    /// Last exchange succeeded (any response line); false from connect
    /// until the first response and after any failure.
    healthy: bool,
    /// Requests forwarded to this shard over the router's lifetime.
    routed: u64,
    /// Send→response round-trip latency per request on this backend
    /// (includes the shard's own queueing and run time — this is the
    /// latency the *router* observes, surfaced in the shard map).
    latency: LatencyHistogram,
    backoff: Duration,
    next_attempt: Instant,
    /// Standby address for failover; consumed (moved into `addr`) when
    /// the primary is declared dead.
    standby: Option<String>,
    /// `Some(deadline)` while a standby promotion is in progress (dial
    /// plus `promote` op). Requests park until the deadline, then
    /// error; the promotion itself keeps retrying past it.
    promoting: Option<Instant>,
    /// This slot's `addr` is a promoted standby (for operators: the
    /// original primary is gone and unmonitored).
    failed_over: bool,
    /// Requests parked during failover, in arrival order.
    parked: VecDeque<ParkedRequest>,
    /// Replication role the backend last reported ("primary" /
    /// "follower"), refreshed by every health probe and metrics fanout.
    role: Option<String>,
    /// Durable-log sequence the backend last reported; with the
    /// standby prober's reading this yields the pair's replication lag.
    log_seq: Option<u64>,
}

enum FanoutKind {
    Metrics,
    Shutdown,
    /// A `trace` query: forward the client's request line to every live
    /// shard and merge the span arrays, tagging each span with the
    /// shard it came from.
    Trace,
    /// A `history` query: forward the client's request line verbatim
    /// (it carries `last`) and return the per-shard responses as a
    /// series array, each tagged with its shard index.
    History,
}

/// What the background prober last learned about one standby.
#[derive(Debug, Clone, Copy, Default)]
struct StandbyProbe {
    /// The standby answered a metrics probe.
    up: bool,
    /// Its reported durable-log sequence.
    log_seq: Option<u64>,
}

/// Shared state between the reactor and the standby prober thread: the
/// addresses to probe (a standby is consumed on failover, at which
/// point its slot goes `None`) and the latest readings.
struct StandbyProberState {
    addrs: Mutex<Vec<Option<String>>>,
    probes: Mutex<Vec<StandbyProbe>>,
    stop: Mutex<bool>,
    stopped: Condvar,
}

/// The standby prober: the reactor never dials standbys (they serve no
/// traffic), so replication lag needs its own slow loop — every probe
/// interval, each configured standby gets one blocking `metrics`
/// request on a throwaway connection, and its `log_seq` lands in the
/// shared state for the shard map and the exposition to read.
fn standby_prober_loop(
    state: Arc<StandbyProberState>,
    interval: Duration,
    connect_timeout: Duration,
    auth_token: Option<String>,
) {
    loop {
        let addrs: Vec<Option<String>> = state.addrs.lock().expect("prober addrs").clone();
        for (idx, addr) in addrs.iter().enumerate() {
            let probe = match addr {
                Some(addr) => {
                    probe_standby(addr, connect_timeout, auth_token.as_deref()).unwrap_or_default()
                }
                None => StandbyProbe::default(),
            };
            state.probes.lock().expect("prober probes")[idx] = probe;
        }
        let guard = state.stop.lock().expect("prober stop");
        let (guard, _) = state
            .stopped
            .wait_timeout(guard, interval)
            .expect("prober stop");
        if *guard {
            return;
        }
    }
}

/// One blocking metrics exchange with a standby; `None` on any failure
/// (connect, timeout, bad response) — the standby is then just "down".
fn probe_standby(
    addr: &str,
    connect_timeout: Duration,
    auth_token: Option<&str>,
) -> Option<StandbyProbe> {
    let stream = connect_backend(addr, connect_timeout).ok()?;
    stream
        .set_read_timeout(Some(connect_timeout.max(Duration::from_secs(1))))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    let mut request = String::new();
    if let Some(token) = auth_token {
        request.push_str(&format!(
            "{{\"op\":\"hello\",\"token\":\"{}\"}}\n",
            json::escape(token)
        ));
    }
    request.push_str("{\"op\":\"metrics\"}\n");
    writer.write_all(request.as_bytes()).ok()?;
    let mut line = String::new();
    if auth_token.is_some() {
        reader.read_line(&mut line).ok()?; // hello ack
        line.clear();
    }
    reader.read_line(&mut line).ok()?;
    let v = json::parse(line.trim()).ok()?;
    if v.get("ok").and_then(Value::as_bool) != Some(true) {
        return None;
    }
    let log_seq = v
        .get("metrics")
        .and_then(|m| m.get("log_seq"))
        .and_then(Value::as_u64);
    Some(StandbyProbe { up: true, log_seq })
}

struct Fanout {
    client: u64,
    seq: usize,
    id_part: String,
    kind: FanoutKind,
    remaining: usize,
    /// Shards the request was actually sent to (connected at creation).
    targets: Vec<usize>,
    /// Per-shard parsed responses (None: shard down or reply lost).
    pieces: Vec<Option<Value>>,
}

#[derive(Default)]
struct RouterStats {
    accepted: u64,
    forwarded: u64,
    refused: u64,
    /// Forwarded requests that died with their backend — every one was
    /// resolved with an error (never a hang). Failover tests assert
    /// client-visible errors ≤ this count.
    inflight_failed: u64,
}

struct DrainState {
    deadline: Instant,
}

struct Router {
    config: RouterConfig,
    map: ShardMap,
    poller: Poller,
    listener: Option<TcpListener>,
    /// HTTP `GET /metrics` scrape listener; also closed by the drain.
    metrics_listener: Option<TcpListener>,
    wake_rx: UnixStream,
    wake_tx: UnixStream,
    connect_rx: Receiver<(usize, io::Result<TcpStream>)>,
    connect_tx: Sender<(usize, io::Result<TcpStream>)>,
    clients: HashMap<RawFd, ClientConn>,
    client_fds: HashMap<u64, RawFd>,
    /// Scrape connections, disjoint from `clients` by fd.
    http_conns: HashMap<RawFd, HttpConn>,
    next_client: u64,
    backends: Vec<BackendSlot>,
    fanouts: HashMap<u64, Fanout>,
    next_fanout: u64,
    drain: Option<DrainState>,
    stats: RouterStats,
    /// Shared with the standby prober thread (None when no standbys).
    prober: Option<(Arc<StandbyProberState>, std::thread::JoinHandle<()>)>,
}

/// Returns the request line with a router-minted `"trace"` field
/// inserted when the client did not supply one, so every tenant-routed
/// request is correlatable across the tier (client → router → shard).
/// Client-supplied ids are forwarded verbatim — the insert is textual
/// (right after the opening brace), never a reparse/rewrite.
fn ensure_trace(line: &str, req: &Value) -> String {
    if req.get("trace").and_then(Value::as_str).is_some() {
        return line.to_string();
    }
    let Some(pos) = line.find('{') else {
        return line.to_string(); // unparseable lines never route here
    };
    let trace = freqywm_obs::next_trace_id();
    let rest = &line[pos + 1..];
    let comma = if rest.trim_start().starts_with('}') {
        ""
    } else {
        ","
    };
    format!("{}\"trace\":\"{}\"{}{}", &line[..=pos], trace, comma, rest)
}

/// Whether a backend response line reports success (`"ok": true`).
fn line_ok(line: &str) -> bool {
    json::parse(line)
        .map(|v| v.get("ok").and_then(Value::as_bool) == Some(true))
        .unwrap_or(false)
}

fn err_with_part(id_part: &str, msg: &str) -> String {
    format!(
        "{{\"ok\":false{id_part},\"error\":\"{}\"}}",
        json::escape(msg)
    )
}

/// Non-blocking bounded read into a framer; returns the completed
/// events. Shared by the client and backend sides. `deliver_tail`
/// controls EOF handling: client input honours a final line without a
/// trailing newline (FrameReader parity), but a backend *response*
/// with no newline is by definition truncated mid-write — delivering
/// it would hand a client garbage as its answer, so the backend side
/// discards it and lets the teardown error the in-flight slot instead.
fn read_events(
    stream: &mut TcpStream,
    framer: &mut LineFramer,
    eof: &mut bool,
    failed: &mut bool,
    deliver_tail: bool,
) -> Vec<LineEvent> {
    let mut out = Vec::new();
    let mut chunk = [0u8; READ_CHUNK];
    let mut budget = READ_BUDGET;
    while budget > 0 {
        match stream.read(&mut chunk) {
            Ok(0) => {
                *eof = true;
                if deliver_tail {
                    framer.finish(|e| out.push(e));
                }
                break;
            }
            Ok(n) => {
                framer.push(&chunk[..n], |e| out.push(e));
                budget = budget.saturating_sub(n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                *failed = true;
                break;
            }
        }
    }
    out
}

/// Non-blocking flush of a positioned write buffer.
fn flush_stream(
    stream: &mut TcpStream,
    out_buf: &mut Vec<u8>,
    out_pos: &mut usize,
    failed: &mut bool,
) {
    while *out_pos < out_buf.len() {
        match stream.write(&out_buf[*out_pos..]) {
            Ok(0) => {
                *failed = true;
                break;
            }
            Ok(n) => *out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                *failed = true;
                break;
            }
        }
    }
    if *out_pos == out_buf.len() {
        out_buf.clear();
        *out_pos = 0;
    } else if *out_pos > COMPACT_THRESHOLD {
        out_buf.drain(..*out_pos);
        *out_pos = 0;
    }
}

fn connect_backend(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let resolved = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("cannot resolve {addr}")))?;
    TcpStream::connect_timeout(&resolved, timeout)
}

impl Router {
    fn new(
        listener: TcpListener,
        metrics_listener: Option<TcpListener>,
        config: RouterConfig,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let mut poller = Poller::new(config.backend)?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        if let Some(ml) = &metrics_listener {
            ml.set_nonblocking(true)?;
            poller.register(ml.as_raw_fd(), TOKEN_METRICS_LISTENER, Interest::READ)?;
        }
        if config.handle_signals {
            signal::install_drain_handler(wake_tx.as_raw_fd());
        }
        let (connect_tx, connect_rx) = channel();
        let now = Instant::now();
        let mut standbys = config.standbys.clone();
        standbys.resize(config.shards.len(), None);
        let prober = if standbys.iter().any(Option::is_some) {
            let state = Arc::new(StandbyProberState {
                addrs: Mutex::new(standbys.clone()),
                probes: Mutex::new(vec![StandbyProbe::default(); config.shards.len()]),
                stop: Mutex::new(false),
                stopped: Condvar::new(),
            });
            let thread_state = Arc::clone(&state);
            let interval = config.probe_interval;
            let connect_timeout = config.connect_timeout;
            let token = config.shard_auth_token.clone();
            let handle = std::thread::spawn(move || {
                standby_prober_loop(thread_state, interval, connect_timeout, token)
            });
            Some((state, handle))
        } else {
            None
        };
        let backends = config
            .shards
            .iter()
            .zip(standbys)
            .map(|(addr, standby)| BackendSlot {
                addr: addr.clone(),
                conn: None,
                connecting: false,
                healthy: false,
                routed: 0,
                latency: LatencyHistogram::default(),
                backoff: config.reconnect_min,
                next_attempt: now,
                standby,
                promoting: None,
                failed_over: false,
                parked: VecDeque::new(),
                role: None,
                log_seq: None,
            })
            .collect();
        let map = ShardMap::new(config.shards.clone());
        Ok(Router {
            config,
            map,
            poller,
            listener: Some(listener),
            metrics_listener,
            wake_rx,
            wake_tx,
            connect_rx,
            connect_tx,
            clients: HashMap::new(),
            client_fds: HashMap::new(),
            http_conns: HashMap::new(),
            next_client: 1,
            backends,
            fanouts: HashMap::new(),
            next_fanout: 1,
            drain: None,
            stats: RouterStats::default(),
            prober,
        })
    }

    fn run(&mut self) -> io::Result<()> {
        let result = self.run_inner();
        if let Some((state, handle)) = self.prober.take() {
            *state.stop.lock().expect("prober stop") = true;
            state.stopped.notify_all();
            let _ = handle.join();
        }
        result
    }

    fn run_inner(&mut self) -> io::Result<()> {
        for idx in 0..self.backends.len() {
            self.spawn_connector(idx);
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.poll_timeout();
            self.poller.wait(&mut events, Some(timeout))?;
            let batch: Vec<Event> = events.clone();
            // Clients can close mid-batch (error, eviction, settle),
            // and an accept later in the same batch can reuse the
            // freed fd — snapshot fd→client-id so a stale event for
            // the old occupant is never applied to the new one.
            let batch_ids: HashMap<RawFd, u64> =
                self.clients.iter().map(|(&fd, c)| (fd, c.id)).collect();
            for ev in batch {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_METRICS_LISTENER => self.accept_metrics_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    t if t >= TOKEN_BACKEND_BASE => {
                        self.backend_ready((t - TOKEN_BACKEND_BASE) as usize, ev)
                    }
                    t => {
                        let fd = t as RawFd;
                        if self.http_conns.contains_key(&fd) {
                            self.http_event(fd, ev);
                        } else if self.clients.get(&fd).map(|c| c.id) == batch_ids.get(&fd).copied()
                        {
                            self.client_ready(fd, ev);
                        }
                    }
                }
            }
            self.drain_connector_results();
            if self.config.handle_signals && signal::drain_requested() && self.drain.is_none() {
                // Signal drain: router only. Backends stay up — the
                // shutdown op is the way to take the whole tier down.
                self.start_drain();
            }
            self.tick_reconnects();
            self.tick_probes();
            self.tick_failovers();
            self.tick_http_idle();
            if let Some(deadline) = self.drain.as_ref().map(|d| d.deadline) {
                // Settled clients were closed as they drained; what's
                // left is either done or past the deadline.
                if self.clients.is_empty() || Instant::now() >= deadline {
                    for fd in self.clients.keys().copied().collect::<Vec<_>>() {
                        self.close_client(fd);
                    }
                    for fd in self.http_conns.keys().copied().collect::<Vec<_>>() {
                        self.close_http(fd);
                    }
                    return Ok(());
                }
            }
        }
    }

    // ----- timers -----------------------------------------------------

    fn poll_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut timeout = MAX_POLL;
        if let Some(d) = &self.drain {
            timeout = timeout.min(d.deadline.saturating_duration_since(now));
        }
        for b in &self.backends {
            if b.conn.is_none() && !b.connecting {
                timeout = timeout.min(b.next_attempt.saturating_duration_since(now));
            }
            if let Some(conn) = &b.conn {
                if conn.inflight.is_empty() {
                    let probe_at = conn.last_activity + self.config.probe_interval;
                    timeout = timeout.min(probe_at.saturating_duration_since(now));
                }
            }
            if let Some(deadline) = b.promoting {
                if !b.parked.is_empty() {
                    // Wake in time to error expired parked requests.
                    timeout = timeout.min(deadline.saturating_duration_since(now));
                }
            }
        }
        timeout
    }

    fn tick_reconnects(&mut self) {
        if self.drain.is_some() {
            return;
        }
        let now = Instant::now();
        for idx in 0..self.backends.len() {
            let b = &self.backends[idx];
            if b.conn.is_none() && !b.connecting && now >= b.next_attempt {
                self.spawn_connector(idx);
            }
        }
    }

    fn tick_probes(&mut self) {
        if self.drain.is_some() {
            return;
        }
        for idx in 0..self.backends.len() {
            let due = match &self.backends[idx].conn {
                Some(conn) => {
                    conn.inflight.is_empty()
                        && conn.last_activity.elapsed() >= self.config.probe_interval
                }
                None => false,
            };
            if due {
                self.send_backend(idx, "{\"op\":\"metrics\"}", Pending::Probe);
            }
        }
    }

    // ----- scrape endpoint --------------------------------------------

    /// Accepts pending scrape connections (shared cap with clients).
    fn accept_metrics_ready(&mut self) {
        loop {
            let Some(listener) = &self.metrics_listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if self.clients.len() + self.http_conns.len() >= self.config.max_conns {
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    if self.poller.register(fd, fd as u64, Interest::READ).is_err() {
                        continue;
                    }
                    self.http_conns.insert(fd, HttpConn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn http_event(&mut self, fd: RawFd, ev: Event) {
        // Rendered up front: the exposition is cheap, and the borrow
        // can't overlap the connection map.
        let body = self.router_prom();
        let Some(conn) = self.http_conns.get_mut(&fd) else {
            return;
        };
        if ev.readable && !conn.responded {
            conn.read_ready(|| body);
        } else if ev.hangup {
            conn.failed = true;
        }
        if ev.writable || conn.responded {
            conn.flush();
        }
        if conn.failed || conn.settled() {
            self.close_http(fd);
            return;
        }
        let want = Interest {
            readable: !conn.responded,
            writable: conn.buffered() > 0,
        };
        if want != conn.interest {
            if self.poller.modify(fd, fd as u64, want).is_ok() {
                conn.interest = want;
            } else {
                self.close_http(fd);
            }
        }
    }

    fn close_http(&mut self, fd: RawFd) {
        if self.http_conns.remove(&fd).is_some() {
            let _ = self.poller.deregister(fd);
        }
    }

    fn tick_http_idle(&mut self) {
        if self.http_conns.is_empty() {
            return;
        }
        let now = Instant::now();
        let expired: Vec<RawFd> = self
            .http_conns
            .iter()
            .filter(|(_, c)| now.duration_since(c.last_activity) >= HTTP_IDLE)
            .map(|(&fd, _)| fd)
            .collect();
        for fd in expired {
            self.close_http(fd);
        }
    }

    /// The latest standby probe readings (empty default when no
    /// standbys are configured / no prober runs).
    fn standby_probes(&self) -> Vec<StandbyProbe> {
        match &self.prober {
            Some((state, _)) => state.probes.lock().expect("prober probes").clone(),
            None => vec![StandbyProbe::default(); self.backends.len()],
        }
    }

    /// Replication lag of shard `idx`: primary `log_seq` minus the
    /// standby's, when both sides have reported one.
    fn repl_lag(&self, idx: usize, probes: &[StandbyProbe]) -> Option<u64> {
        let primary = self.backends[idx].log_seq?;
        let standby = probes.get(idx).and_then(|p| p.log_seq)?;
        Some(primary.saturating_sub(standby))
    }

    /// The router's own Prometheus exposition: tier counters plus one
    /// labelled series per shard (up/health/routed/role/log_seq/
    /// replication lag and the router-observed RTT histogram). Shard
    /// *engine* metrics are not re-exported here — scrape each engine's
    /// own `--metrics-listen` for those; this endpoint is the router's
    /// view of the tier.
    fn router_prom(&self) -> String {
        let mut w = PromText::new();
        w.family(
            "freqywm_router_info",
            PromKind::Gauge,
            "Router tier metadata; value is always 1.",
        );
        w.sample(
            "freqywm_router_info",
            &[("shards", &self.backends.len().to_string())],
            1.0,
        );
        for (name, help, v) in [
            (
                "freqywm_router_clients_accepted_total",
                "Client connections accepted.",
                self.stats.accepted,
            ),
            (
                "freqywm_router_forwarded_total",
                "Requests forwarded to a shard.",
                self.stats.forwarded,
            ),
            (
                "freqywm_router_refused_total",
                "Requests answered with a router-side error.",
                self.stats.refused,
            ),
            (
                "freqywm_router_inflight_failed_total",
                "Forwarded requests errored because their backend died.",
                self.stats.inflight_failed,
            ),
        ] {
            w.scalar(name, PromKind::Counter, help, v as f64);
        }
        w.scalar(
            "freqywm_router_clients_active",
            PromKind::Gauge,
            "Currently connected clients.",
            self.clients.len() as f64,
        );
        w.scalar(
            "freqywm_router_draining",
            PromKind::Gauge,
            "1 while the router is draining.",
            if self.drain.is_some() { 1.0 } else { 0.0 },
        );
        let probes = self.standby_probes();
        let shard_labels: Vec<String> = (0..self.backends.len()).map(|i| i.to_string()).collect();
        w.family(
            "freqywm_router_shard_info",
            PromKind::Gauge,
            "Shard address and replication role; value is always 1.",
        );
        for (i, b) in self.backends.iter().enumerate() {
            w.sample(
                "freqywm_router_shard_info",
                &[
                    ("shard", &shard_labels[i]),
                    ("addr", &b.addr),
                    ("role", b.role.as_deref().unwrap_or("unknown")),
                ],
                1.0,
            );
        }
        type FlagGetter = fn(&BackendSlot) -> bool;
        let flags: [(&str, &str, FlagGetter); 4] = [
            ("freqywm_router_shard_up", "Backend connected.", |b| {
                b.conn.is_some()
            }),
            (
                "freqywm_router_shard_healthy",
                "Last probe answered successfully.",
                |b| b.healthy,
            ),
            (
                "freqywm_router_shard_failed_over",
                "Shard is served by a promoted standby.",
                |b| b.failed_over,
            ),
            (
                "freqywm_router_shard_standby_up",
                "Configured standby answered its last probe.",
                |b| b.standby.is_some(),
            ),
        ];
        for (name, help, get) in flags {
            w.family(name, PromKind::Gauge, help);
            for (i, b) in self.backends.iter().enumerate() {
                let v = if name == "freqywm_router_shard_standby_up" {
                    get(b) && probes[i].up
                } else {
                    get(b)
                };
                w.sample(
                    name,
                    &[("shard", &shard_labels[i])],
                    if v { 1.0 } else { 0.0 },
                );
            }
        }
        w.family(
            "freqywm_router_shard_routed_total",
            PromKind::Counter,
            "Requests forwarded to this shard.",
        );
        for (i, b) in self.backends.iter().enumerate() {
            w.sample(
                "freqywm_router_shard_routed_total",
                &[("shard", &shard_labels[i])],
                b.routed as f64,
            );
        }
        w.family(
            "freqywm_router_shard_log_seq",
            PromKind::Gauge,
            "Durable-log sequence the shard primary last reported.",
        );
        for (i, b) in self.backends.iter().enumerate() {
            if let Some(seq) = b.log_seq {
                w.sample(
                    "freqywm_router_shard_log_seq",
                    &[("shard", &shard_labels[i])],
                    seq as f64,
                );
            }
        }
        w.family(
            "freqywm_router_shard_standby_log_seq",
            PromKind::Gauge,
            "Durable-log sequence the shard standby last reported.",
        );
        for i in 0..self.backends.len() {
            if let Some(seq) = probes[i].log_seq {
                w.sample(
                    "freqywm_router_shard_standby_log_seq",
                    &[("shard", &shard_labels[i])],
                    seq as f64,
                );
            }
        }
        w.family(
            "freqywm_router_shard_replication_lag",
            PromKind::Gauge,
            "Log events the standby trails its primary by (primary log_seq - standby log_seq).",
        );
        for (i, label) in shard_labels.iter().enumerate() {
            if let Some(lag) = self.repl_lag(i, &probes) {
                w.sample(
                    "freqywm_router_shard_replication_lag",
                    &[("shard", label)],
                    lag as f64,
                );
            }
        }
        w.family(
            "freqywm_router_shard_rtt_seconds",
            PromKind::Histogram,
            "Router-observed request round-trip time per shard (send to response, \
             including the shard's own queueing and run time).",
        );
        for (i, b) in self.backends.iter().enumerate() {
            latency_to_prom(
                &mut w,
                "freqywm_router_shard_rtt_seconds",
                &[("shard", &shard_labels[i])],
                &b.latency.snapshot(),
            );
        }
        w.finish()
    }

    // ----- wakeup + connectors ----------------------------------------

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Dials shard `idx` on a throwaway thread; the result arrives via
    /// the channel + wake pipe. The reactor never blocks in connect(2).
    fn spawn_connector(&mut self, idx: usize) {
        self.backends[idx].connecting = true;
        let addr = self.backends[idx].addr.clone();
        let timeout = self.config.connect_timeout;
        let tx = self.connect_tx.clone();
        let wake = self.wake_tx.try_clone().ok();
        std::thread::spawn(move || {
            let result = connect_backend(&addr, timeout);
            let _ = tx.send((idx, result));
            if let Some(wake) = wake {
                let _ = (&wake).write(&[1]);
            }
        });
    }

    fn drain_connector_results(&mut self) {
        while let Ok((idx, result)) = self.connect_rx.try_recv() {
            self.backends[idx].connecting = false;
            match result {
                Ok(stream) if self.drain.is_none() => self.install_backend(idx, stream),
                Ok(_dropped_during_drain) => {}
                Err(_) => self.schedule_reconnect(idx),
            }
        }
    }

    fn install_backend(&mut self, idx: usize, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return self.schedule_reconnect(idx);
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        if self
            .poller
            .register(fd, TOKEN_BACKEND_BASE + idx as u64, Interest::READ)
            .is_err()
        {
            return self.schedule_reconnect(idx);
        }
        self.backends[idx].conn = Some(BackendConn::new(stream));
        // Backoff is NOT reset here: a crash-looping backend accepts
        // then dies before ever answering, and resetting on connect
        // would turn that into a tight dial loop. Only a successful
        // probe (or promote) response earns the reset.
        //
        // Authenticate, then (mid-failover) promote, then probe: the
        // probe response flips `healthy`.
        if let Some(token) = self.config.shard_auth_token.clone() {
            let hello = format!(
                "{{\"op\":\"hello\",\"token\":\"{}\"}}",
                json::escape(&token)
            );
            self.send_backend(idx, &hello, Pending::Hello);
        }
        if self.backends[idx].promoting.is_some() {
            self.send_backend(idx, "{\"op\":\"promote\"}", Pending::Promote);
        }
        self.send_backend(idx, "{\"op\":\"metrics\"}", Pending::Probe);
    }

    fn schedule_reconnect(&mut self, idx: usize) {
        let b = &mut self.backends[idx];
        b.next_attempt = Instant::now() + b.backoff;
        b.backoff = (b.backoff * 2).min(self.config.reconnect_max);
    }

    // ----- backend side -----------------------------------------------

    fn send_backend(&mut self, idx: usize, line: &str, pending: Pending) {
        let Some(conn) = self.backends[idx].conn.as_mut() else {
            return;
        };
        conn.out_buf.extend_from_slice(line.as_bytes());
        conn.out_buf.push(b'\n');
        conn.inflight.push_back((Instant::now(), pending));
        flush_stream(
            &mut conn.stream,
            &mut conn.out_buf,
            &mut conn.out_pos,
            &mut conn.failed,
        );
        conn.last_activity = Instant::now();
        if conn.failed {
            self.fail_backend(idx);
        } else {
            self.update_backend_interest(idx);
        }
    }

    fn backend_ready(&mut self, idx: usize, ev: Event) {
        if idx >= self.backends.len() {
            return;
        }
        let mut lines = Vec::new();
        {
            let Some(conn) = self.backends[idx].conn.as_mut() else {
                return;
            };
            if ev.readable {
                let events = read_events(
                    &mut conn.stream,
                    &mut conn.framer,
                    &mut conn.eof,
                    &mut conn.failed,
                    // A backend tail with no newline is a response
                    // truncated mid-write — never a deliverable line.
                    false,
                );
                conn.last_activity = Instant::now();
                for e in events {
                    match e {
                        LineEvent::Line(line) => lines.push(line),
                        // A response that overflows the cap means the
                        // stream lost framing; resync via reconnect.
                        LineEvent::Oversized => conn.failed = true,
                    }
                }
            }
            if ev.hangup {
                conn.eof = true;
            }
            if ev.writable && !conn.failed {
                flush_stream(
                    &mut conn.stream,
                    &mut conn.out_buf,
                    &mut conn.out_pos,
                    &mut conn.failed,
                );
            }
        }
        for line in lines {
            self.backend_line(idx, line);
        }
        let dead = match self.backends[idx].conn.as_ref() {
            Some(conn) => conn.failed || conn.eof,
            None => false,
        };
        if dead {
            self.fail_backend(idx);
        } else {
            self.update_backend_interest(idx);
        }
    }

    fn backend_line(&mut self, idx: usize, line: String) {
        let pending = match self.backends[idx].conn.as_mut() {
            Some(conn) => conn.inflight.pop_front(),
            None => None,
        };
        let pending = pending.map(|(sent, pending)| {
            self.backends[idx].latency.record(sent.elapsed());
            pending
        });
        match pending {
            None => {
                // A response with nothing in flight: the stream is out
                // of sync; reconnect to resync.
                if let Some(conn) = self.backends[idx].conn.as_mut() {
                    conn.failed = true;
                }
            }
            Some(Pending::Client { client, seq, .. }) => {
                self.resolve_client_slot(client, seq, line)
            }
            Some(Pending::Fanout { fanout }) => self.fanout_piece(fanout, idx, Some(line)),
            Some(Pending::Probe) => {
                // Health is earned by a *successful* probe response.
                // Any line used to flip `healthy`, so a backend
                // rejecting the router's hello (wrong token) oscillated
                // healthy on its own error replies.
                let parsed = json::parse(&line).ok();
                let ok = parsed
                    .as_ref()
                    .and_then(|v| v.get("ok"))
                    .and_then(Value::as_bool)
                    == Some(true);
                self.backends[idx].healthy = ok;
                if ok {
                    // …and a successful probe is also what proves the
                    // backend actually serves, so the reconnect backoff
                    // resets here, not on mere TCP accept.
                    self.backends[idx].backoff = self.config.reconnect_min;
                    // The probe is a metrics response: keep the shard's
                    // replication view (role, log_seq) fresh from it.
                    if let Some(m) = parsed.as_ref().and_then(|v| v.get("metrics")) {
                        self.note_shard_metrics(idx, m);
                    }
                }
            }
            Some(Pending::Hello) => {}
            Some(Pending::Promote) => self.finish_promotion(idx, line_ok(&line)),
        }
    }

    /// Updates the cached replication view (role, log_seq) of shard
    /// `idx` from a metrics object it reported — every probe and every
    /// metrics fanout keeps these fresh without extra traffic.
    fn note_shard_metrics(&mut self, idx: usize, metrics: &Value) {
        if let Some(role) = metrics.get("role").and_then(Value::as_str) {
            self.backends[idx].role = Some(role.to_string());
        }
        if let Some(seq) = metrics.get("log_seq").and_then(Value::as_u64) {
            self.backends[idx].log_seq = Some(seq);
        }
    }

    /// The `promote` ack arrived: on success the standby is the new
    /// primary — release the shard's parked traffic to it. On refusal
    /// (corrupt chain, bad auth) the parked requests cannot succeed;
    /// error them and leave the backend serving whatever it still can
    /// (reads on a still-follower engine), with errors scoped per
    /// request rather than per shard.
    fn finish_promotion(&mut self, idx: usize, ok: bool) {
        self.backends[idx].promoting = None;
        let addr = self.backends[idx].addr.clone();
        if ok {
            self.backends[idx].healthy = true;
            self.backends[idx].backoff = self.config.reconnect_min;
            eprintln!(
                "{{\"event\":\"failover_promoted\",\"shard\":{idx},\"addr\":\"{}\",\"parked\":{}}}",
                json::escape(&addr),
                self.backends[idx].parked.len()
            );
            self.flush_parked(idx, None);
        } else {
            eprintln!(
                "{{\"event\":\"failover_promote_refused\",\"shard\":{idx},\"addr\":\"{}\"}}",
                json::escape(&addr)
            );
            self.flush_parked(
                idx,
                Some(format!(
                    "shard {idx} ({addr}) failover failed: promote refused"
                )),
            );
        }
    }

    /// Drains a shard's parked requests: forwards them in arrival order
    /// (`error: None`) or resolves each with `error`. If the connection
    /// dies mid-flush the remainder error too — a parked slot must
    /// never be dropped silently (the client would hang forever).
    fn flush_parked(&mut self, idx: usize, error: Option<String>) {
        let parked: Vec<ParkedRequest> = self.backends[idx].parked.drain(..).collect();
        for p in parked {
            let lost = error.is_none() && self.backends[idx].conn.is_none();
            match (&error, lost) {
                (None, false) => {
                    self.backends[idx].routed += 1;
                    self.stats.forwarded += 1;
                    self.send_backend(
                        idx,
                        &p.line,
                        Pending::Client {
                            client: p.client,
                            seq: p.seq,
                            id_part: p.id_part,
                        },
                    );
                }
                (None, true) => {
                    let msg = format!("shard {idx} ({}) connection lost", self.backends[idx].addr);
                    self.stats.refused += 1;
                    self.resolve_client_slot(p.client, p.seq, err_with_part(&p.id_part, &msg));
                }
                (Some(msg), _) => {
                    self.stats.refused += 1;
                    self.resolve_client_slot(p.client, p.seq, err_with_part(&p.id_part, msg));
                }
            }
        }
    }

    /// Tears down a backend connection: every in-flight request gets a
    /// protocol error (scoped to this shard's tenants — other shards
    /// are untouched), the fd is deregistered, and either a failover
    /// begins (standby configured) or a reconnect is scheduled with
    /// backoff. In-flight losses are counted (`inflight_failed`) so
    /// failover tests can assert errors ≤ in-flight at kill time.
    fn fail_backend(&mut self, idx: usize) {
        let Some(mut conn) = self.backends[idx].conn.take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.backends[idx].healthy = false;
        let addr = self.backends[idx].addr.clone();
        for (_sent, pending) in conn.inflight.drain(..) {
            match pending {
                Pending::Client {
                    client,
                    seq,
                    id_part,
                } => {
                    let msg = format!("shard {idx} ({addr}) connection lost");
                    self.stats.inflight_failed += 1;
                    self.resolve_client_slot(client, seq, err_with_part(&id_part, &msg));
                }
                Pending::Fanout { fanout } => self.fanout_piece(fanout, idx, None),
                Pending::Probe | Pending::Hello => {}
                // The promote ack died with the connection; `promoting`
                // stays set, so the next (re)connect re-issues it — the
                // op is idempotent on the engine.
                Pending::Promote => {}
            }
        }
        if self.drain.is_none() {
            if self.backends[idx].promoting.is_none() {
                if let Some(standby) = self.backends[idx].standby.take() {
                    return self.begin_failover(idx, standby);
                }
            }
            self.schedule_reconnect(idx);
        }
    }

    /// The primary died with a standby configured: the standby address
    /// takes over the slot, a promotion window opens (new requests park
    /// instead of erroring), and the dial starts immediately. The dead
    /// primary's address is dropped — after promotion the standby *is*
    /// the shard; seeding a replacement standby is an operator action.
    fn begin_failover(&mut self, idx: usize, standby: String) {
        // The standby is about to become the primary: stop probing it
        // as a standby (its slot in the prober's address list empties).
        if let Some((state, _)) = &self.prober {
            state.addrs.lock().expect("prober addrs")[idx] = None;
            state.probes.lock().expect("prober probes")[idx] = StandbyProbe::default();
        }
        let old = std::mem::replace(&mut self.backends[idx].addr, standby);
        self.backends[idx].promoting = Some(Instant::now() + self.config.failover_timeout);
        self.backends[idx].failed_over = true;
        self.backends[idx].backoff = self.config.reconnect_min;
        self.backends[idx].next_attempt = Instant::now();
        eprintln!(
            "{{\"event\":\"failover_started\",\"shard\":{idx},\"dead\":\"{}\",\"standby\":\"{}\"}}",
            json::escape(&old),
            json::escape(&self.backends[idx].addr)
        );
        self.spawn_connector(idx);
    }

    /// Errors out parked requests whose failover window expired. The
    /// promotion itself keeps retrying — only the waiting clients give
    /// up, exactly as if the shard were down.
    fn tick_failovers(&mut self) {
        let now = Instant::now();
        for idx in 0..self.backends.len() {
            let expired = self.backends[idx]
                .promoting
                .is_some_and(|deadline| now >= deadline)
                && !self.backends[idx].parked.is_empty();
            if expired {
                let msg = format!(
                    "shard {idx} ({}) failover timed out",
                    self.backends[idx].addr
                );
                self.flush_parked(idx, Some(msg));
            }
        }
    }

    fn update_backend_interest(&mut self, idx: usize) {
        let Some(conn) = self.backends[idx].conn.as_mut() else {
            return;
        };
        let want = Interest {
            readable: true,
            writable: conn.buffered() > 0,
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self
                .poller
                .modify(fd, TOKEN_BACKEND_BASE + idx as u64, want)
                .is_ok()
            {
                conn.interest = want;
            } else {
                self.fail_backend(idx);
            }
        }
    }

    // ----- client side ------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if self.clients.len() >= self.config.max_conns {
                        continue; // dropped: peer sees an immediate close
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    if self.poller.register(fd, fd as u64, Interest::READ).is_err() {
                        continue;
                    }
                    let id = self.next_client;
                    self.next_client += 1;
                    self.stats.accepted += 1;
                    self.clients
                        .insert(fd, ClientConn::new(id, stream, self.config.max_frame));
                    self.client_fds.insert(id, fd);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn client_ready(&mut self, fd: RawFd, ev: Event) {
        let mut incoming = Vec::new();
        {
            let Some(conn) = self.clients.get_mut(&fd) else {
                return;
            };
            if ev.readable && !conn.eof && self.drain.is_none() {
                let events = read_events(
                    &mut conn.stream,
                    &mut conn.framer,
                    &mut conn.eof,
                    &mut conn.failed,
                    true,
                );
                incoming = events;
            } else if ev.hangup {
                conn.eof = true;
            }
            if ev.writable && !conn.failed {
                flush_stream(
                    &mut conn.stream,
                    &mut conn.out_buf,
                    &mut conn.out_pos,
                    &mut conn.failed,
                );
            }
        }
        for event in incoming {
            match event {
                LineEvent::Line(line) => self.handle_client_line(fd, &line),
                LineEvent::Oversized => {
                    if let Some(conn) = self.clients.get_mut(&fd) {
                        conn.push_ready(frame_too_large_response(self.config.max_frame));
                    }
                }
            }
        }
        self.pump_client(fd);
    }

    fn handle_client_line(&mut self, fd: RawFd, line: &str) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return;
        }
        let Some(conn) = self.clients.get_mut(&fd) else {
            return;
        };
        if self.drain.is_some() {
            let (id, _) = freqywm_service::proto::plan(line);
            conn.push_ready(err_response(id.as_ref(), "router draining"));
            self.stats.refused += 1;
            return;
        }
        let req = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                conn.push_ready(err_response(None, &format!("bad json: {e}")));
                self.stats.refused += 1;
                return;
            }
        };
        let id = req.get("id").cloned();
        // Client-side auth gate, mirroring the engine Session's.
        if let Some(token) = &self.config.auth_token {
            if !conn.authed {
                let is_hello = req.get("op").and_then(Value::as_str) == Some("hello");
                if is_hello {
                    let presented = req.get("token").and_then(Value::as_str).unwrap_or("");
                    if token_eq(presented, token) {
                        conn.authed = true;
                        conn.push_ready(format!(
                            "{{\"ok\":true{},\"op\":\"hello\",\"authenticated\":true,\"router\":true}}",
                            id_echo(id.as_ref())
                        ));
                    } else {
                        conn.push_ready(err_response(id.as_ref(), "hello: bad auth token"));
                        self.stats.refused += 1;
                    }
                    return;
                }
                let presented = req.get("auth").and_then(Value::as_str);
                if !presented.is_some_and(|p| token_eq(p, token)) {
                    conn.push_ready(err_response(
                        id.as_ref(),
                        "authentication required: send {\"op\":\"hello\",\"token\":…} first",
                    ));
                    self.stats.refused += 1;
                    return;
                }
                // Per-request auth: this request proceeds, session
                // stays locked.
            }
        }
        match route_of(&req) {
            RouteInfo::Tenant(tenant) => {
                let shard = self.map.shard_of(&tenant);
                let line = ensure_trace(line, &req);
                self.forward(fd, shard, &line, id.as_ref());
            }
            RouteInfo::TenantPair(a, b) => {
                let (sa, sb) = (self.map.shard_of(&a), self.map.shard_of(&b));
                if sa == sb {
                    let line = ensure_trace(line, &req);
                    self.forward(fd, sa, &line, id.as_ref());
                } else {
                    let msg = format!(
                        "unroutable dispute: tenants {a:?} (shard {sa}) and {b:?} \
                         (shard {sb}) live on different shards"
                    );
                    let Some(conn) = self.clients.get_mut(&fd) else {
                        return;
                    };
                    conn.push_ready(err_response(id.as_ref(), &msg));
                    self.stats.refused += 1;
                }
            }
            RouteInfo::Broadcast => {
                // Broadcast ops fan out to every live shard; `trace`
                // and `history` must forward the client's own request
                // line (it carries filter/limit fields) where `metrics`
                // sends a canonical probe.
                let kind = match req.get("op").and_then(Value::as_str) {
                    Some("trace") => FanoutKind::Trace,
                    Some("history") => FanoutKind::History,
                    _ => FanoutKind::Metrics,
                };
                self.start_fanout(fd, id.as_ref(), kind, line);
            }
            RouteInfo::Shutdown => {
                // Tier shutdown: drain the router AND take the backends
                // down; the ack lands once every live backend acked.
                // The fanout reserves the requester's response slot
                // FIRST — start_drain closes settled clients, and the
                // requester must survive to receive the ack.
                self.start_fanout(fd, id.as_ref(), FanoutKind::Shutdown, line);
                self.start_drain();
            }
            RouteInfo::Local => {
                let Some(conn) = self.clients.get_mut(&fd) else {
                    return;
                };
                conn.push_ready(format!(
                    "{{\"ok\":true{},\"op\":\"hello\",\"router\":true,\"shards\":{}}}",
                    id_echo(id.as_ref()),
                    self.map.len()
                ));
            }
            RouteInfo::Unroutable(msg) => {
                let Some(conn) = self.clients.get_mut(&fd) else {
                    return;
                };
                conn.push_ready(err_response(id.as_ref(), &msg));
                self.stats.refused += 1;
            }
        }
    }

    /// Forwards the raw request line to `shard`, reserving the client's
    /// next response slot. During a failover the request parks instead
    /// (released when the standby's promotion acks); a down shard with
    /// no failover in progress answers immediately with a protocol
    /// error — errors are scoped to the shard, never the tier.
    fn forward(&mut self, fd: RawFd, shard: usize, line: &str, id: Option<&Value>) {
        let id_part = id_echo(id);
        let Some(conn) = self.clients.get_mut(&fd) else {
            return;
        };
        let client = conn.id;
        let seq = conn.push_pending();
        if let Some(deadline) = self.backends[shard].promoting {
            if Instant::now() < deadline && self.backends[shard].parked.len() < MAX_PARKED {
                self.backends[shard].parked.push_back(ParkedRequest {
                    client,
                    seq,
                    id_part,
                    line: line.to_string(),
                });
                return;
            }
            let msg = format!(
                "shard {shard} ({}) failover in progress",
                self.backends[shard].addr
            );
            self.resolve_client_slot(client, seq, err_with_part(&id_part, &msg));
            self.stats.refused += 1;
            return;
        }
        if self.backends[shard].conn.is_none() {
            let msg = format!("shard {shard} ({}) unavailable", self.backends[shard].addr);
            self.resolve_client_slot(client, seq, err_with_part(&id_part, &msg));
            self.stats.refused += 1;
            return;
        }
        self.backends[shard].routed += 1;
        self.stats.forwarded += 1;
        let pending = Pending::Client {
            client,
            seq,
            id_part,
        };
        self.send_backend(shard, line, pending);
    }

    fn start_fanout(&mut self, fd: RawFd, id: Option<&Value>, kind: FanoutKind, line: &str) {
        let id_part = id_echo(id);
        let Some(conn) = self.clients.get_mut(&fd) else {
            return;
        };
        let client = conn.id;
        let seq = conn.push_pending();
        let connected: Vec<usize> = (0..self.backends.len())
            .filter(|&i| self.backends[i].conn.is_some())
            .collect();
        let fanout_id = self.next_fanout;
        self.next_fanout += 1;
        let request = match kind {
            FanoutKind::Metrics => "{\"op\":\"metrics\"}".to_string(),
            FanoutKind::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
            // The shards need the client's filter/limit fields verbatim.
            FanoutKind::Trace | FanoutKind::History => line.to_string(),
        };
        self.fanouts.insert(
            fanout_id,
            Fanout {
                client,
                seq,
                id_part,
                kind,
                remaining: connected.len(),
                targets: connected.clone(),
                pieces: vec![None; self.backends.len()],
            },
        );
        for idx in connected {
            self.send_backend(idx, &request, Pending::Fanout { fanout: fanout_id });
        }
        self.try_finish_fanout(fanout_id);
    }

    fn fanout_piece(&mut self, fanout_id: u64, shard: usize, line: Option<String>) {
        let Some(f) = self.fanouts.get_mut(&fanout_id) else {
            return;
        };
        if let Some(line) = line {
            f.pieces[shard] = json::parse(&line).ok();
        }
        f.remaining = f.remaining.saturating_sub(1);
        self.try_finish_fanout(fanout_id);
    }

    fn try_finish_fanout(&mut self, fanout_id: u64) {
        let done = self
            .fanouts
            .get(&fanout_id)
            .is_some_and(|f| f.remaining == 0);
        if !done {
            return;
        }
        let f = self.fanouts.remove(&fanout_id).expect("checked above");
        let resp = match f.kind {
            FanoutKind::Shutdown => {
                // Honest ack: a backend that refused the shutdown op
                // (e.g. wrong --shard-auth-token) or died before
                // answering did NOT shut down — the router still
                // drains itself, but the client must not be told the
                // tier went down when it didn't.
                let unacked: Vec<String> = f
                    .targets
                    .iter()
                    .filter(|&&i| {
                        f.pieces[i]
                            .as_ref()
                            .and_then(|v| v.get("ok"))
                            .and_then(Value::as_bool)
                            != Some(true)
                    })
                    .map(|i| i.to_string())
                    .collect();
                if unacked.is_empty() {
                    format!("{{\"ok\":true{},\"op\":\"shutdown\"}}", f.id_part)
                } else {
                    err_with_part(
                        &f.id_part,
                        &format!(
                            "router draining, but shutdown was not acknowledged by \
                             shard(s) {}",
                            unacked.join(", ")
                        ),
                    )
                }
            }
            FanoutKind::Trace => {
                // Merge the shards' span arrays into one timeline:
                // every span gains a "shard" field, and the whole list
                // is ordered by start time so interleaved stages from
                // different shards read chronologically.
                let mut spans: Vec<(u64, String)> = Vec::new();
                for (i, piece) in f.pieces.iter().enumerate() {
                    let Some(arr) = piece
                        .as_ref()
                        .and_then(|v| v.get("spans"))
                        .and_then(Value::as_arr)
                    else {
                        continue;
                    };
                    for span in arr {
                        if let Value::Obj(fields) = span {
                            let start = span
                                .get("start_us")
                                .and_then(Value::as_u64)
                                .unwrap_or(u64::MAX);
                            let mut fields = fields.clone();
                            fields.push(("shard".to_string(), Value::Num(i as f64)));
                            spans.push((start, json::write(&Value::Obj(fields))));
                        }
                    }
                }
                spans.sort_by_key(|(start, _)| *start);
                let rendered: Vec<String> = spans.into_iter().map(|(_, s)| s).collect();
                format!(
                    "{{\"ok\":true{},\"op\":\"trace\",\"router\":true,\"count\":{},\"spans\":[{}]}}",
                    f.id_part,
                    rendered.len(),
                    rendered.join(",")
                )
            }
            FanoutKind::History => {
                // Per-shard series, each the shard's own history
                // response tagged with its index — rates and samples
                // stay per-shard (summing histories across shards
                // would blur exactly the skew `top` wants to show).
                let mut series: Vec<String> = Vec::new();
                for (i, piece) in f.pieces.iter().enumerate() {
                    let Some(Value::Obj(fields)) = piece else {
                        continue;
                    };
                    let mut fields: Vec<(String, Value)> = fields
                        .iter()
                        .filter(|(k, _)| k != "ok" && k != "op" && k != "id")
                        .cloned()
                        .collect();
                    fields.insert(0, ("shard_index".to_string(), Value::Num(i as f64)));
                    series.push(json::write(&Value::Obj(fields)));
                }
                format!(
                    "{{\"ok\":true{},\"op\":\"history\",\"router\":true,\"series\":[{}]}}",
                    f.id_part,
                    series.join(",")
                )
            }
            FanoutKind::Metrics => {
                // Fresh metrics in hand: refresh each shard's cached
                // replication view before rendering the map.
                for i in 0..self.backends.len() {
                    if let Some(m) = f.pieces[i].as_ref().and_then(|v| v.get("metrics")).cloned() {
                        self.note_shard_metrics(i, &m);
                    }
                }
                let probes = self.standby_probes();
                let pieces: Vec<ShardMetricsPiece> = (0..self.backends.len())
                    .map(|i| ShardMetricsPiece {
                        index: i,
                        addr: self.backends[i].addr.clone(),
                        up: self.backends[i].conn.is_some(),
                        metrics: f.pieces[i].as_ref().and_then(|v| v.get("metrics").cloned()),
                    })
                    .collect();
                let shard_map: Vec<String> = self
                    .backends
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        let lat = b.latency.snapshot();
                        let standby = match &b.standby {
                            Some(s) => format!("\"{}\"", json::escape(s)),
                            None => "null".to_string(),
                        };
                        let role = match &b.role {
                            Some(r) => format!("\"{}\"", json::escape(r)),
                            None => "null".to_string(),
                        };
                        let num_or_null =
                            |v: Option<u64>| v.map_or("null".to_string(), |n| n.to_string());
                        format!(
                            concat!(
                                "{{\"shard\":{},\"addr\":\"{}\",\"up\":{},\"healthy\":{},",
                                "\"standby\":{},\"promoting\":{},\"failed_over\":{},",
                                "\"role\":{},\"log_seq\":{},\"standby_log_seq\":{},",
                                "\"repl_lag\":{},",
                                "\"routed\":{},\"latency\":{{\"count\":{},\"mean_us\":{:.0},",
                                "\"p50_us\":{},\"p99_us\":{}}}}}"
                            ),
                            i,
                            json::escape(&b.addr),
                            b.conn.is_some(),
                            b.healthy,
                            standby,
                            b.promoting.is_some(),
                            b.failed_over,
                            role,
                            num_or_null(b.log_seq),
                            num_or_null(probes.get(i).and_then(|p| p.log_seq)),
                            num_or_null(self.repl_lag(i, &probes)),
                            b.routed,
                            lat.count,
                            lat.mean_micros(),
                            lat.quantile_upper_micros(0.50),
                            lat.quantile_upper_micros(0.99),
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        "{{\"ok\":true{},\"op\":\"metrics\",\"scheme\":\"jump\",",
                        "\"router\":{{\"clients_accepted\":{},\"clients_active\":{},",
                        "\"forwarded\":{},\"refused\":{},\"inflight_failed\":{},",
                        "\"draining\":{}}},",
                        "\"shard_map\":[{}],\"metrics\":{}}}"
                    ),
                    f.id_part,
                    self.stats.accepted,
                    self.clients.len(),
                    self.stats.forwarded,
                    self.stats.refused,
                    self.stats.inflight_failed,
                    self.drain.is_some(),
                    shard_map.join(","),
                    aggregate_shard_metrics(&pieces),
                )
            }
        };
        self.resolve_client_slot(f.client, f.seq, resp);
    }

    fn resolve_client_slot(&mut self, client: u64, seq: usize, resp: String) {
        let Some(&fd) = self.client_fds.get(&client) else {
            return; // client died before its response arrived
        };
        if let Some(conn) = self.clients.get_mut(&fd) {
            conn.resolve(seq, resp);
        }
        self.pump_client(fd);
    }

    fn pump_client(&mut self, fd: RawFd) {
        let close = {
            let Some(conn) = self.clients.get_mut(&fd) else {
                return;
            };
            conn.queue_ready();
            if !conn.failed {
                flush_stream(
                    &mut conn.stream,
                    &mut conn.out_buf,
                    &mut conn.out_pos,
                    &mut conn.failed,
                );
            }
            conn.failed
                || conn.buffered() > self.config.max_write_buffer
                || ((conn.eof || self.drain.is_some()) && conn.settled())
        };
        if close {
            self.close_client(fd);
        } else {
            self.update_client_interest(fd);
        }
    }

    fn update_client_interest(&mut self, fd: RawFd) {
        let draining = self.drain.is_some();
        let Some(conn) = self.clients.get_mut(&fd) else {
            return;
        };
        let want = Interest {
            readable: !conn.eof && !draining,
            writable: conn.buffered() > 0,
        };
        if want != conn.interest {
            if self.poller.modify(fd, fd as u64, want).is_ok() {
                conn.interest = want;
            } else {
                self.close_client(fd);
            }
        }
    }

    fn close_client(&mut self, fd: RawFd) {
        let Some(conn) = self.clients.remove(&fd) else {
            return;
        };
        let _ = self.poller.deregister(fd);
        self.client_fds.remove(&conn.id);
        // Pending backend entries referencing this client stay in their
        // FIFOs (position is the correlation); their responses are
        // dropped at dispatch when the lookup fails.
    }

    /// Stops accepting and freezes client input; in-flight responses
    /// still flush, and clients close as they settle.
    fn start_drain(&mut self) {
        if self.drain.is_some() {
            return;
        }
        self.drain = Some(DrainState {
            deadline: Instant::now() + self.config.drain_timeout,
        });
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        if let Some(ml) = self.metrics_listener.take() {
            let _ = self.poller.deregister(ml.as_raw_fd());
        }
        // Parked requests can never complete during a drain (no
        // reconnects, no promotions run) — error them now so their
        // clients can settle and close instead of hitting the deadline.
        for idx in 0..self.backends.len() {
            if !self.backends[idx].parked.is_empty() {
                self.flush_parked(idx, Some("router draining".to_string()));
            }
        }
        for fd in self.clients.keys().copied().collect::<Vec<_>>() {
            self.pump_client(fd);
        }
    }
}
