//! Tenant → shard placement via jump-consistent hashing.
//!
//! The router tier must send every request for a tenant to the same
//! backend engine, with near-uniform load and minimal movement when the
//! shard count changes. Jump consistent hash (Lamping & Veach, 2014)
//! gives all three in ~5 lines with zero state: it is a deterministic
//! function of `(key, bucket_count)`, its assignment is uniform to
//! within sampling noise, and growing from `N` to `N+1` buckets moves
//! exactly the expected `1/(N+1)` fraction of keys — strictly better
//! than modulo hashing (which moves almost everything) and simpler than
//! a vnode ring (no table to build, no weights to tune).
//!
//! Tenant ids are strings; they are folded to the `u64` key with
//! FNV-1a, which is stable across platforms and releases — placement is
//! part of the deployment contract (each shard's `--data-dir` holds the
//! tenants that hash to it), so the hash must never drift.

/// FNV-1a over `bytes` — the stable string → `u64` fold for placement.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Jump consistent hash: maps `key` to a bucket in `0..buckets`.
/// `buckets` must be ≥ 1.
pub fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    assert!(buckets >= 1, "jump_hash needs at least one bucket");
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = (((b + 1) as f64) * ((1u64 << 31) as f64 / ((key >> 33) as f64 + 1.0))) as i64;
    }
    b as u32
}

/// The shard index (`0..shards`) owning `tenant`.
pub fn tenant_shard(tenant: &str, shards: usize) -> usize {
    assert!(shards >= 1, "tenant_shard needs at least one shard");
    jump_hash(fnv1a64(tenant.as_bytes()), shards as u32) as usize
}

/// The deployment's shard map: ordered backend addresses, with
/// placement by [`tenant_shard`]. Shard index = position in the list,
/// so the `--shard` order on the router command line IS the map — it
/// must match every backend's `--shard-id i/N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    addrs: Vec<String>,
}

impl ShardMap {
    /// `addrs` must be non-empty; index in the vec is the shard id.
    pub fn new(addrs: Vec<String>) -> Self {
        assert!(!addrs.is_empty(), "a shard map needs at least one shard");
        ShardMap { addrs }
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    pub fn addr(&self, shard: usize) -> &str {
        &self.addrs[shard]
    }

    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The shard owning `tenant`.
    pub fn shard_of(&self, tenant: &str) -> usize {
        tenant_shard(tenant, self.addrs.len())
    }

    /// Multi-line human-readable placement summary, logged at router
    /// startup so operators can verify the deployment's shard map.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "shard map: {} shard(s), jump-consistent hash on tenant id\n",
            self.addrs.len()
        );
        for (i, addr) in self.addrs.iter().enumerate() {
            out.push_str(&format!("  shard {i}/{} -> {addr}\n", self.addrs.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_matches_reference_vectors() {
        // Spot checks against the published algorithm's behaviour:
        // bucket 0 for one bucket, stable outputs for fixed keys.
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(jump_hash(key, 1), 0);
        }
        for key in 0..1000u64 {
            let b = jump_hash(key, 8);
            assert!(b < 8);
            assert_eq!(b, jump_hash(key, 8), "deterministic");
        }
    }

    #[test]
    fn monotone_growth_never_moves_between_surviving_buckets() {
        // The defining jump-hash property: growing the bucket count
        // only ever moves a key INTO the new bucket, never between old
        // ones.
        for key in 0..2000u64 {
            for n in 1..10u32 {
                let before = jump_hash(key, n);
                let after = jump_hash(key, n + 1);
                assert!(
                    after == before || after == n,
                    "key {key} moved {before} -> {after} when growing {n} -> {}",
                    n + 1
                );
            }
        }
    }

    #[test]
    fn shard_map_places_and_describes() {
        let map = ShardMap::new(vec!["a:1".into(), "b:2".into(), "c:3".into()]);
        assert_eq!(map.len(), 3);
        let s = map.shard_of("tenant-42");
        assert!(s < 3);
        assert_eq!(s, tenant_shard("tenant-42", 3));
        let d = map.describe();
        assert!(d.contains("3 shard(s)"), "{d}");
        assert!(d.contains("shard 1/3 -> b:2"), "{d}");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: placement is a deployment contract.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
