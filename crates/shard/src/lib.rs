//! Cross-process sharding for the FreqyWM service: a consistent-hash
//! router tier over N engine shards.
//!
//! One engine process owns every tenant's ledger, PRF cache and worker
//! pool — one box is the ceiling. This crate removes it by partitioning
//! *tenants* across processes, which the engine's design makes cheap:
//! the registry, the durable ledger and the PRF cache are all
//! tenant-keyed already, so a partition is just "an engine that only
//! sees its own tenants".
//!
//! * [`ring`] — placement: jump-consistent hashing of tenant ids onto
//!   shard indices (deterministic, uniform, moves ~1/N of tenants when
//!   a shard is added), and the [`ring::ShardMap`] deployment contract;
//! * [`router`] — the tier: `freqywm router --listen … --shard …×N`
//!   accepts the ordinary JSON-lines protocol, forwards each request to
//!   its tenant's shard over multiplexed pipelined backend connections,
//!   fans out and merges tenant-agnostic ops, and survives backend
//!   death with per-shard errors + reconnect backoff.
//!
//! Each backend runs `freqywm serve --listen … --shard-id i/N
//! --data-dir <dir-i>`: the `--shard-id` gate makes misrouting loud
//! (the engine refuses tenants it does not own) and per-shard data-dirs
//! keep durability per partition. See `docs/sharding.md` for topology,
//! failure semantics and resharding caveats.

pub mod ring;

#[cfg(unix)]
mod router;
#[cfg(unix)]
pub mod signal;

#[cfg(unix)]
pub use router::{run_router, run_router_with_metrics, RouterConfig};

pub use ring::{fnv1a64, jump_hash, tenant_shard, ShardMap};

#[cfg(not(unix))]
pub fn run_router(_listener: std::net::TcpListener, _config: ()) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the freqywm router tier requires a unix platform (epoll/poll)",
    ))
}
