//! Minimal SIGTERM/SIGINT hook for the router's graceful drain.
//!
//! `kill -TERM <router>` must finish in-flight client work, flush, and
//! exit cleanly — without taking the backend shards down (an operator
//! restarting the router tier does not want the engines cycled). The
//! handler is async-signal-safe: it sets one flag and writes one byte
//! to the reactor's wakeup pipe; the reactor notices on its next
//! iteration. No external signal crate — two libc symbols, same style
//! as `freqywm-net`'s raw syscall bindings.
#![cfg(unix)]

use std::os::raw::c_int;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);
static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;

extern "C" {
    fn signal(signum: c_int, handler: usize) -> usize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

extern "C" fn on_signal(_sig: c_int) {
    DRAIN_REQUESTED.store(true, Ordering::SeqCst);
    let fd = WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        // Best-effort wake; a full pipe already guarantees a wakeup.
        unsafe { write(fd, [1u8].as_ptr(), 1) };
    }
}

/// Installs SIGTERM/SIGINT handlers that request a drain and wake the
/// reactor through `wake_fd`. Process-global; the most recent caller's
/// pipe gets the wake byte (one router per process in practice).
pub fn install_drain_handler(wake_fd: RawFd) {
    WAKE_FD.store(wake_fd, Ordering::SeqCst);
    DRAIN_REQUESTED.store(false, Ordering::SeqCst);
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Detaches the wakeup pipe (called when the router returns, before the
/// pipe fd is closed). The handlers stay installed but become
/// flag-only.
pub fn detach_drain_handler() {
    WAKE_FD.store(-1, Ordering::SeqCst);
}

/// True once a drain signal arrived. Sticky until the next
/// [`install_drain_handler`].
pub fn drain_requested() -> bool {
    DRAIN_REQUESTED.load(Ordering::SeqCst)
}
