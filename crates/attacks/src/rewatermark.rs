//! The re-watermarking / false-claim attack (Sec. V-D).
//!
//! The pirate runs the public `WM_Generate` on the stolen watermarked
//! data and presents the result with its own secret. [`rewatermark_attack`]
//! produces the pirate's claim; the dispute itself is arbitrated by
//! [`freqywm_core::judge`].

use freqywm_core::error::Result;
use freqywm_core::generate::Watermarker;
use freqywm_core::judge::Claim;
use freqywm_crypto::prf::Secret;
use freqywm_data::histogram::Histogram;

/// Mounts the attack: watermark the (already watermarked) `stolen`
/// histogram with the pirate's own secret and return the pirate's
/// claim as it would be presented to a judge.
pub fn rewatermark_attack(
    stolen: &Histogram,
    pirate_watermarker: &Watermarker,
    pirate_secret: Secret,
) -> Result<Claim> {
    let out = pirate_watermarker.generate_histogram(stolen, pirate_secret)?;
    Ok(Claim {
        histogram: out.watermarked,
        secrets: out.secrets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqywm_core::detect::detect_histogram;
    use freqywm_core::judge::{judge_dispute, Verdict};
    use freqywm_core::params::{DetectionParams, GenerationParams};
    use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};

    fn owner_setup() -> (Histogram, Claim, Watermarker) {
        let h = Histogram::from_counts(power_law_counts(&PowerLawConfig {
            distinct_tokens: 400,
            sample_size: 800_000,
            alpha: 0.5,
        }));
        let wm = Watermarker::new(
            GenerationParams::default()
                .with_z(131)
                .with_exclude_free_pairs(true),
        );
        let out = wm
            .generate_histogram(&h, Secret::from_label("rightful-owner"))
            .unwrap();
        let claim = Claim {
            histogram: out.watermarked,
            secrets: out.secrets,
        };
        (h, claim, wm)
    }

    #[test]
    fn first_watermark_survives_rewatermarking() {
        let (_, owner, wm) = owner_setup();
        let pirate =
            rewatermark_attack(&owner.histogram, &wm, Secret::from_label("pirate")).unwrap();
        // Paper: first watermark detected with ~92% of pairs at t = 0
        // on the doubly watermarked data.
        let params = DetectionParams::default().with_t(0).with_k(1);
        let d = detect_histogram(&pirate.histogram, &owner.secrets, &params);
        assert!(
            d.accept_rate() > 0.3,
            "owner pair survival {} too low",
            d.accept_rate()
        );
    }

    #[test]
    fn judge_rules_for_the_owner() {
        let (_, owner, wm) = owner_setup();
        let pirate =
            rewatermark_attack(&owner.histogram, &wm, Secret::from_label("pirate")).unwrap();
        let params = DetectionParams::default()
            .with_t(0)
            .with_k((owner.secrets.len() / 4).max(1));
        let ruling = judge_dispute(&owner, &pirate, &params);
        assert_eq!(ruling.verdict, Verdict::FirstParty);
    }

    #[test]
    fn double_rewatermarking_never_flips_to_the_pirate() {
        // Pirate stacks two of its own watermarks. Each extra round
        // erodes the judge's margin (both cross-rates drift toward each
        // other — see EXPERIMENTS.md, "Reproduction notes"), so we only
        // assert the safety property: the pirate never *wins*.
        let (_, owner, wm) = owner_setup();
        let p1 = rewatermark_attack(&owner.histogram, &wm, Secret::from_label("pirate-1")).unwrap();
        let p2 = rewatermark_attack(&p1.histogram, &wm, Secret::from_label("pirate-2")).unwrap();
        let params = DetectionParams::default()
            .with_t(0)
            .with_k((owner.secrets.len() / 4).max(1));
        let ruling = judge_dispute(&owner, &p2, &params);
        assert_ne!(ruling.verdict, Verdict::SecondParty);
    }
}
