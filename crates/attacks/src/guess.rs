//! The guess (brute-force) attack (Sec. V-A).
//!
//! The attacker sees the watermarked data `D_w` and tries to forge a
//! secret list `L'_sc = {pairs, R*, z*}` that makes `WM_Detect` accept.
//! Security rests on the λ-bit entropy of `R`: the success probability
//! of any probabilistic polynomial-time attacker is `negl(λ)`.
//!
//! [`guess_attack`] actually mounts the attack with a budget of random
//! `R*` candidates and reports the empirical success rate, and
//! [`empirical_pair_fp_probability`] estimates the per-pair acceptance
//! probability feeding the Sec. III-B4 tail analysis: both are (and
//! must stay) essentially zero for strict thresholds.

use freqywm_core::detect::detect_histogram;
use freqywm_core::params::DetectionParams;
use freqywm_core::secret::SecretList;
use freqywm_crypto::prf::{pair_modulus, Secret};
use freqywm_data::histogram::Histogram;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Result of a budgeted guess attack.
#[derive(Debug, Clone, PartialEq)]
pub struct GuessAttackReport {
    /// Number of forged secrets tried.
    pub attempts: usize,
    /// Forged secrets that made detection accept.
    pub successes: usize,
    /// Best accepted-pair count over all attempts.
    pub best_accepted_pairs: usize,
}

impl GuessAttackReport {
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

/// Mounts the guess attack: `attempts` forged secrets, each paired with
/// `pairs_per_guess` random token pairs from the watermarked histogram,
/// checked with the owner's detection parameters.
pub fn guess_attack<R: RngCore>(
    watermarked: &Histogram,
    z: u64,
    params: &DetectionParams,
    attempts: usize,
    pairs_per_guess: usize,
    rng: &mut R,
) -> GuessAttackReport {
    let tokens: Vec<_> = watermarked.tokens().cloned().collect();
    let mut successes = 0usize;
    let mut best = 0usize;
    for _ in 0..attempts {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        let forged_secret = Secret::from_bytes(bytes);
        let mut pairs = Vec::with_capacity(pairs_per_guess);
        for _ in 0..pairs_per_guess {
            let a = tokens.choose(rng).expect("non-empty histogram").clone();
            let mut b = tokens.choose(rng).expect("non-empty").clone();
            while b == a && tokens.len() > 1 {
                b = tokens.choose(rng).expect("non-empty").clone();
            }
            pairs.push((a, b));
        }
        let forged = SecretList::new(pairs, forged_secret, z);
        let outcome = detect_histogram(watermarked, &forged, params);
        best = best.max(outcome.accepted_pairs);
        if outcome.accepted {
            successes += 1;
        }
    }
    GuessAttackReport {
        attempts,
        successes,
        best_accepted_pairs: best,
    }
}

/// Expected per-pair acceptance probability of a *random* pair/secret
/// under tolerance `t`: `E[min(2t+1, s)/s]` over the modulus
/// distribution the histogram induces. The dataset-level success is
/// the Poisson–Binomial tail of that probability — the quantity the
/// paper bounds with Markov's inequality.
pub fn empirical_pair_fp_probability<R: RngCore>(
    watermarked: &Histogram,
    z: u64,
    t: u64,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let tokens: Vec<_> = watermarked.tokens().cloned().collect();
    if tokens.len() < 2 || samples == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for _ in 0..samples {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        let secret = Secret::from_bytes(bytes);
        let i = rng.gen_range(0..tokens.len());
        let mut j = rng.gen_range(0..tokens.len());
        while j == i {
            j = rng.gen_range(0..tokens.len());
        }
        let s = pair_modulus(&secret, tokens[i].as_bytes(), tokens[j].as_bytes(), z);
        if s < 2 {
            continue;
        }
        let fa = watermarked.count(&tokens[i]).unwrap();
        let fb = watermarked.count(&tokens[j]).unwrap();
        let rm = (fa as i128 - fb as i128).rem_euclid(s as i128) as u64;
        if rm.min(s - rm) <= t {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqywm_core::generate::Watermarker;
    use freqywm_core::params::GenerationParams;
    use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn watermarked() -> (Histogram, SecretList) {
        let h = Histogram::from_counts(power_law_counts(&PowerLawConfig {
            distinct_tokens: 120,
            sample_size: 200_000,
            alpha: 0.6,
        }));
        let wm = Watermarker::new(GenerationParams::default().with_z(331));
        let out = wm
            .generate_histogram(&h, Secret::from_label("guess-tests"))
            .unwrap();
        (out.watermarked, out.secrets)
    }

    #[test]
    fn strict_guess_attack_fails() {
        let (hist, secrets) = watermarked();
        let mut rng = StdRng::seed_from_u64(1);
        // The owner demands most pairs exact: hopeless for a guesser.
        let k = (secrets.len() * 3 / 4).max(2);
        let params = DetectionParams::default().with_t(0).with_k(k);
        let report = guess_attack(&hist, secrets.z, &params, 200, secrets.len(), &mut rng);
        assert_eq!(report.successes, 0, "a brute-force guesser must not win");
        assert!(report.best_accepted_pairs < k);
    }

    #[test]
    fn loose_thresholds_admit_false_positives() {
        // Sanity check of the other direction: with t enormous and k=1
        // every guess "succeeds" — thresholds matter.
        let (hist, secrets) = watermarked();
        let mut rng = StdRng::seed_from_u64(2);
        let params = DetectionParams::default().with_t(10_000).with_k(1);
        let report = guess_attack(&hist, secrets.z, &params, 20, 4, &mut rng);
        assert_eq!(report.successes, report.attempts);
    }

    #[test]
    fn per_pair_fp_probability_tracks_tolerance() {
        let (hist, secrets) = watermarked();
        let mut rng = StdRng::seed_from_u64(3);
        let p0 = empirical_pair_fp_probability(&hist, secrets.z, 0, 3_000, &mut rng);
        let p4 = empirical_pair_fp_probability(&hist, secrets.z, 4, 3_000, &mut rng);
        assert!(p0 < p4, "t=0 ({p0}) must be rarer than t=4 ({p4})");
        // With z = 331, a random s averages ~165, so t=0 hits ~E[1/s];
        // allow a generous band.
        assert!(p0 < 0.2, "p0 = {p0}");
        assert!(p4 < 0.6, "p4 = {p4}");
    }

    #[test]
    fn empty_cases() {
        let h = Histogram::from_counts([(freqywm_data::token::Token::new("only"), 5u64)]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            empirical_pair_fp_probability(&h, 131, 0, 100, &mut rng),
            0.0
        );
        let report = GuessAttackReport {
            attempts: 0,
            successes: 0,
            best_accepted_pairs: 0,
        };
        assert_eq!(report.success_rate(), 0.0);
    }
}
