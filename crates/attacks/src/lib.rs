//! Attack suite (Sec. V): the adversarial moves FreqyWM's robustness
//! evaluation measures, implemented as first-class operations so the
//! benches and examples can replay the paper's scenarios.
//!
//! * [`sampling`] — pirate a random x% subsample (Sec. V-B);
//! * [`destroy`] — add noise to token frequencies, with or without
//!   respecting the ranking (Sec. V-C);
//! * [`guess`] — brute-force search for the watermarking secret
//!   (Sec. V-A), with the success-probability accounting that shows
//!   why it is hopeless;
//! * [`rewatermark`] — the false-claim attack and its resolution via
//!   the judge protocol (Sec. V-D).
//!
//! All attacks are deterministic given an RNG, so experiments are
//! reproducible.

pub mod destroy;
pub mod guess;
pub mod rewatermark;
pub mod sampling;

pub use destroy::{destroy_percentage, destroy_with_reordering, destroy_within_boundaries};
pub use guess::{guess_attack, GuessAttackReport};
pub use rewatermark::rewatermark_attack;
pub use sampling::{sampling_attack, SampleDetection};
