//! The sampling attack (Sec. V-B).
//!
//! The attacker lifts a uniformly random `x%` subsample of the
//! watermarked dataset, hoping the watermark is undetectable in it.
//! The owner's counter-move: scale the subsample's histogram back up
//! by `100/x` (the original size is public metadata) and detect with a
//! tolerance `t` that absorbs the sampling noise.

use freqywm_core::detect::{detect_histogram, DetectionOutcome};
use freqywm_core::params::DetectionParams;
use freqywm_core::secret::SecretList;
use freqywm_data::dataset::Dataset;
use freqywm_data::histogram::Histogram;
use rand::RngCore;

/// Result of one sampling-attack round.
#[derive(Debug, Clone)]
pub struct SampleDetection {
    /// Sample fraction in (0, 1].
    pub fraction: f64,
    /// Distinct tokens surviving in the subsample.
    pub distinct_tokens: usize,
    /// Detection outcome on the scaled-up subsample.
    pub outcome: DetectionOutcome,
}

/// Extracts an `x = fraction` subsample of `watermarked`, scales its
/// histogram back to the original size and runs detection.
///
/// `params.scale` is overridden with `1/fraction` (the paper's
/// "multiplying the frequency counts by 100/x").
pub fn sampling_attack<R: RngCore>(
    watermarked: &Dataset,
    secrets: &SecretList,
    params: &DetectionParams,
    fraction: f64,
    rng: &mut R,
) -> SampleDetection {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "sample fraction must be in (0, 1], got {fraction}"
    );
    let sample = watermarked.sample(fraction, rng);
    let hist = sample.histogram();
    let distinct = hist.len();
    let scaled_params = params.with_scale(1.0 / fraction);
    let outcome = detect_histogram(&hist, secrets, &scaled_params);
    SampleDetection {
        fraction,
        distinct_tokens: distinct,
        outcome,
    }
}

/// Histogram-level variant used by the large-scale experiments: takes
/// an already-sampled histogram (e.g. produced by binomial thinning)
/// instead of materialising the token list.
pub fn detect_scaled(
    sample_hist: &Histogram,
    secrets: &SecretList,
    params: &DetectionParams,
    fraction: f64,
) -> DetectionOutcome {
    assert!(fraction > 0.0 && fraction <= 1.0);
    detect_histogram(sample_hist, secrets, &params.with_scale(1.0 / fraction))
}

/// Binomial thinning of a histogram: each of the `c` instances of a
/// token survives independently with probability `fraction`. A faithful
/// model of uniform subsampling that avoids materialising huge token
/// lists.
pub fn thin_histogram<R: RngCore>(hist: &Histogram, fraction: f64, rng: &mut R) -> Histogram {
    use rand::Rng;
    assert!((0.0..=1.0).contains(&fraction));
    Histogram::from_counts(hist.entries().iter().filter_map(|(t, c)| {
        // Binomial(c, fraction) via normal approximation for large c,
        // exact Bernoulli summation for small c.
        let kept = if *c > 10_000 {
            let mean = *c as f64 * fraction;
            let sd = (*c as f64 * fraction * (1.0 - fraction)).sqrt();
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen();
            let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mean + sd * normal).round().clamp(0.0, *c as f64) as u64
        } else {
            (0..*c).filter(|_| rng.gen::<f64>() < fraction).count() as u64
        };
        (kept > 0).then(|| (t.clone(), kept))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqywm_core::generate::Watermarker;
    use freqywm_core::params::GenerationParams;
    use freqywm_crypto::prf::Secret;
    use freqywm_data::synthetic::{power_law_dataset, PowerLawConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn watermarked_dataset() -> (Dataset, SecretList) {
        let cfg = PowerLawConfig {
            distinct_tokens: 100,
            sample_size: 200_000,
            alpha: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let data = power_law_dataset(&cfg, &mut rng);
        let wm = Watermarker::new(GenerationParams::default().with_z(101));
        let (wdata, secrets, _) = wm
            .watermark_dataset(&data, Secret::from_label("sampling-tests"))
            .unwrap();
        (wdata, secrets)
    }

    #[test]
    fn large_sample_detected_with_tolerance() {
        let (wdata, secrets) = watermarked_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let params = DetectionParams::default().with_t(10).with_k(1);
        let r = sampling_attack(&wdata, &secrets, &params, 0.5, &mut rng);
        assert!(r.outcome.accepted);
        assert!(
            r.outcome.accept_rate() > 0.5,
            "50% sample, t=10: rate {}",
            r.outcome.accept_rate()
        );
    }

    #[test]
    fn detection_rate_improves_with_t() {
        let (wdata, secrets) = watermarked_dataset();
        let mut rates = Vec::new();
        for t in [0u64, 2, 10] {
            let mut rng = StdRng::seed_from_u64(7);
            let params = DetectionParams::default().with_t(t).with_k(1);
            let r = sampling_attack(&wdata, &secrets, &params, 0.2, &mut rng);
            rates.push(r.outcome.accept_rate());
        }
        assert!(rates[0] <= rates[1] + 1e-9);
        assert!(rates[1] <= rates[2] + 1e-9);
        assert!(rates[2] > 0.5, "20% sample, t=10: rate {}", rates[2]);
    }

    #[test]
    fn tiny_sample_loses_tokens_and_detection_degrades() {
        let (wdata, secrets) = watermarked_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let params = DetectionParams::default().with_t(2).with_k(1);
        let big = sampling_attack(&wdata, &secrets, &params, 0.5, &mut rng);
        let tiny = sampling_attack(&wdata, &secrets, &params, 0.001, &mut rng);
        assert!(tiny.distinct_tokens <= big.distinct_tokens);
        assert!(
            tiny.outcome.accept_rate() <= big.outcome.accept_rate() + 0.15,
            "tiny {} vs big {}",
            tiny.outcome.accept_rate(),
            big.outcome.accept_rate()
        );
    }

    #[test]
    fn full_sample_with_zero_t_is_exact() {
        let (wdata, secrets) = watermarked_dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let params = DetectionParams::default().with_t(0).with_k(secrets.len());
        let r = sampling_attack(&wdata, &secrets, &params, 1.0, &mut rng);
        assert!(r.outcome.accepted, "100% sample must verify exactly");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let (wdata, secrets) = watermarked_dataset();
        let mut rng = StdRng::seed_from_u64(5);
        sampling_attack(&wdata, &secrets, &DetectionParams::default(), 0.0, &mut rng);
    }

    #[test]
    fn thinning_preserves_expectation() {
        let (wdata, _) = watermarked_dataset();
        let hist = wdata.histogram();
        let mut rng = StdRng::seed_from_u64(6);
        let thin = thin_histogram(&hist, 0.3, &mut rng);
        let ratio = thin.total() as f64 / hist.total() as f64;
        assert!((ratio - 0.3).abs() < 0.02, "thinning ratio {ratio}");
        // No token gains count.
        for (t, c) in thin.entries() {
            assert!(*c <= hist.count(t).unwrap());
        }
    }

    #[test]
    fn thinned_histogram_detects_like_sampled_dataset() {
        let (wdata, secrets) = watermarked_dataset();
        let hist = wdata.histogram();
        let mut rng = StdRng::seed_from_u64(8);
        let thin = thin_histogram(&hist, 0.25, &mut rng);
        let params = DetectionParams::default().with_t(10).with_k(1);
        let outcome = detect_scaled(&thin, &secrets, &params, 0.25);
        assert!(outcome.accepted);
        assert!(
            outcome.accept_rate() > 0.4,
            "rate {}",
            outcome.accept_rate()
        );
    }
}
