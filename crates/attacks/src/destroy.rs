//! Destroy attacks (Sec. V-C).
//!
//! The attacker knows the scheme (Kerckhoffs) and tries to erase the
//! watermark by perturbing token frequencies:
//!
//! * **without re-ordering** — preserving the ranking (otherwise the
//!   attacked copy loses the utility the attacker wants to resell):
//!   either uniformly random within each token's rank boundaries
//!   (the stronger variant) or capped at ±p% of the boundaries;
//! * **with re-ordering** — unconstrained ±p% noise on every
//!   frequency; destroys more watermark but also more data utility.

use freqywm_data::histogram::Histogram;
use rand::{Rng, RngCore};

/// Destroy attack *without re-ordering*, strong variant: every token's
/// frequency moves by a uniformly random amount within its current
/// upper/lower boundary (boundaries are updated as the sweep proceeds,
/// exactly as the paper describes, so the ranking is never violated).
pub fn destroy_within_boundaries<R: RngCore>(hist: &Histogram, rng: &mut R) -> Histogram {
    let mut counts = hist.counts();
    let n = counts.len();
    let tokens: Vec<_> = hist.tokens().cloned().collect();
    for i in 0..n {
        let upper = if i == 0 {
            counts[i] / 2
        } else {
            counts[i - 1] - counts[i]
        };
        let lower = if i + 1 == n {
            counts[i]
        } else {
            counts[i] - counts[i + 1]
        };
        let r = sample_signed(rng, lower, upper);
        counts[i] = (counts[i] as i64 + r) as u64;
        // The next token's upper boundary now refers to the updated
        // counts[i]; the loop naturally uses it.
    }
    Histogram::from_counts(tokens.into_iter().zip(counts))
}

/// Destroy attack *without re-ordering*, capped variant: each token
/// moves by at most ±`pct`% of its boundaries (`floor(boundary·pct)`),
/// the paper's weaker red-line attack.
pub fn destroy_percentage<R: RngCore>(hist: &Histogram, pct: f64, rng: &mut R) -> Histogram {
    assert!((0.0..=100.0).contains(&pct), "percentage in [0, 100]");
    let frac = pct / 100.0;
    let mut counts = hist.counts();
    let n = counts.len();
    let tokens: Vec<_> = hist.tokens().cloned().collect();
    for i in 0..n {
        let upper = if i == 0 {
            counts[i] / 2
        } else {
            counts[i - 1] - counts[i]
        };
        let lower = if i + 1 == n {
            counts[i]
        } else {
            counts[i] - counts[i + 1]
        };
        let u = (upper as f64 * frac).floor() as u64;
        let l = (lower as f64 * frac).floor() as u64;
        let r = sample_signed(rng, l, u);
        counts[i] = (counts[i] as i64 + r) as u64;
    }
    Histogram::from_counts(tokens.into_iter().zip(counts))
}

/// Destroy attack *with re-ordering*: every frequency moves by a
/// uniform random amount in ±`pct`% of its own value, ranking be
/// damned (Sec. V-C2).
pub fn destroy_with_reordering<R: RngCore>(hist: &Histogram, pct: f64, rng: &mut R) -> Histogram {
    assert!((0.0..=100.0).contains(&pct), "percentage in [0, 100]");
    let frac = pct / 100.0;
    Histogram::from_counts(hist.entries().iter().map(|(t, c)| {
        let span = (*c as f64 * frac).floor() as i64;
        let r = if span == 0 {
            0
        } else {
            rng.gen_range(-span..=span)
        };
        (t.clone(), (*c as i64 + r).max(0) as u64)
    }))
}

/// Uniform draw from `[-lower, +upper]` (inclusive), signed.
fn sample_signed<R: RngCore>(rng: &mut R, lower: u64, upper: u64) -> i64 {
    let lo = -(lower.min(i64::MAX as u64) as i64);
    let hi = upper.min(i64::MAX as u64) as i64;
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqywm_core::detect::detect_histogram;
    use freqywm_core::generate::Watermarker;
    use freqywm_core::params::{DetectionParams, GenerationParams};
    use freqywm_crypto::prf::Secret;
    use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
    use freqywm_stats::rank::ranking_preserved;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn watermarked() -> (Histogram, freqywm_core::generate::GenerationOutput) {
        let h = Histogram::from_counts(power_law_counts(&PowerLawConfig {
            distinct_tokens: 200,
            sample_size: 400_000,
            alpha: 0.5,
        }));
        let wm = Watermarker::new(GenerationParams::default().with_z(131));
        let out = wm
            .generate_histogram(&h, Secret::from_label("destroy-tests"))
            .unwrap();
        (h, out)
    }

    fn paired(a: &Histogram, b: &Histogram) -> (Vec<u64>, Vec<u64>) {
        a.paired_counts(b)
    }

    #[test]
    fn boundary_attack_preserves_ranking() {
        let (_, out) = watermarked();
        let mut rng = StdRng::seed_from_u64(1);
        let attacked = destroy_within_boundaries(&out.watermarked, &mut rng);
        let (before, after) = paired(&out.watermarked, &attacked);
        assert!(ranking_preserved(&before, &after));
        assert_eq!(attacked.len(), out.watermarked.len());
    }

    #[test]
    fn percentage_attack_preserves_ranking_and_moves_less() {
        let (_, out) = watermarked();
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let strong = destroy_within_boundaries(&out.watermarked, &mut rng1);
        let weak = destroy_percentage(&out.watermarked, 1.0, &mut rng2);
        let (b1, a1) = paired(&out.watermarked, &strong);
        let (b2, a2) = paired(&out.watermarked, &weak);
        assert!(ranking_preserved(&b2, &a2));
        let move_strong: u64 = b1.iter().zip(&a1).map(|(x, y)| x.abs_diff(*y)).sum();
        let move_weak: u64 = b2.iter().zip(&a2).map(|(x, y)| x.abs_diff(*y)).sum();
        assert!(
            move_weak < move_strong,
            "1% attack ({move_weak}) must move less than the boundary attack ({move_strong})"
        );
    }

    #[test]
    fn weak_attack_leaves_watermark_mostly_detectable() {
        let (_, out) = watermarked();
        let mut rng = StdRng::seed_from_u64(3);
        let attacked = destroy_percentage(&out.watermarked, 1.0, &mut rng);
        let params = DetectionParams::default().with_t(4).with_k(1);
        let d = detect_histogram(&attacked, &out.secrets, &params);
        // Paper Fig. 5 red line: ~90% verified under the ±1% attack.
        assert!(
            d.accept_rate() > 0.6,
            "±1% attack should leave most pairs verifiable: {}",
            d.accept_rate()
        );
    }

    #[test]
    fn strong_attack_hurts_more_than_weak() {
        let (_, out) = watermarked();
        let params = DetectionParams::default().with_t(0).with_k(1);
        let mut r1 = StdRng::seed_from_u64(4);
        let mut r2 = StdRng::seed_from_u64(4);
        let strong = destroy_within_boundaries(&out.watermarked, &mut r1);
        let weak = destroy_percentage(&out.watermarked, 1.0, &mut r2);
        let ds = detect_histogram(&strong, &out.secrets, &params);
        let dw = detect_histogram(&weak, &out.secrets, &params);
        assert!(
            ds.accept_rate() <= dw.accept_rate() + 0.1,
            "strong {} vs weak {}",
            ds.accept_rate(),
            dw.accept_rate()
        );
    }

    #[test]
    fn reordering_attack_churns_ranks() {
        let (_, out) = watermarked();
        let mut rng = StdRng::seed_from_u64(5);
        let attacked = destroy_with_reordering(&out.watermarked, 50.0, &mut rng);
        let (before, after) = paired(&out.watermarked, &attacked);
        let churn = freqywm_stats::rank::rank_churn(&before, &after);
        assert!(churn > 0, "50% unconstrained noise must change some ranks");
    }

    #[test]
    fn reordering_zero_pct_is_identity() {
        let (_, out) = watermarked();
        let mut rng = StdRng::seed_from_u64(6);
        let attacked = destroy_with_reordering(&out.watermarked, 0.0, &mut rng);
        assert_eq!(attacked, out.watermarked);
    }

    #[test]
    fn watermark_survives_heavy_reordering_with_tolerance() {
        // Paper: detectable with ~76% pair rate up to 90% modification
        // at t = 4 — we assert a conservative floor.
        let (_, out) = watermarked();
        let mut rng = StdRng::seed_from_u64(7);
        let attacked = destroy_with_reordering(&out.watermarked, 90.0, &mut rng);
        let params = DetectionParams::default().with_t(4).with_k(1);
        let d = detect_histogram(&attacked, &out.secrets, &params);
        assert!(
            d.accept_rate() > 0.3,
            "90% reordering attack, t=4: rate {}",
            d.accept_rate()
        );
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn invalid_percentage_panics() {
        let (_, out) = watermarked();
        let mut rng = StdRng::seed_from_u64(8);
        destroy_percentage(&out.watermarked, 150.0, &mut rng);
    }
}
