//! A compact real-coded genetic algorithm.
//!
//! WM-OBT solves its per-partition hiding problem with a GA
//! (Goldberg-style: tournament selection, blend crossover, Gaussian
//! mutation, elitism). This implementation is generic so the ablation
//! benches can reuse it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    pub population: usize,
    pub generations: usize,
    /// Probability of blend crossover per offspring.
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Mutation step as a fraction of the gene's bound width.
    pub mutation_scale: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 60,
            generations: 80,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            mutation_scale: 0.2,
            tournament: 3,
            elitism: 2,
            seed: 0,
        }
    }
}

/// Maximises `fitness` over the box `bounds` (per-gene `[lo, hi]`).
/// Returns the best genome found.
pub fn optimize<F>(bounds: &[(f64, f64)], mut fitness: F, cfg: &GaConfig) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(!bounds.is_empty(), "need at least one gene");
    assert!(cfg.population >= 2, "population must be >= 2");
    assert!(
        bounds.iter().all(|(lo, hi)| lo <= hi),
        "each bound must satisfy lo <= hi"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dim = bounds.len();
    let sample = |rng: &mut StdRng| -> Vec<f64> {
        bounds
            .iter()
            .map(|&(lo, hi)| if lo == hi { lo } else { rng.gen_range(lo..=hi) })
            .collect()
    };
    let mut pop: Vec<Vec<f64>> = (0..cfg.population).map(|_| sample(&mut rng)).collect();
    let mut fit: Vec<f64> = pop.iter().map(|g| fitness(g)).collect();

    let mut best_idx = argmax(&fit);
    let mut best = (pop[best_idx].clone(), fit[best_idx]);

    for _ in 0..cfg.generations {
        let mut next: Vec<Vec<f64>> = Vec::with_capacity(cfg.population);
        // Elitism.
        let mut order: Vec<usize> = (0..pop.len()).collect();
        order.sort_by(|&a, &b| fit[b].partial_cmp(&fit[a]).expect("finite fitness"));
        for &i in order.iter().take(cfg.elitism.min(pop.len())) {
            next.push(pop[i].clone());
        }
        while next.len() < cfg.population {
            let p1 = tournament(&pop, &fit, cfg.tournament, &mut rng);
            let p2 = tournament(&pop, &fit, cfg.tournament, &mut rng);
            let mut child = if rng.gen::<f64>() < cfg.crossover_rate {
                // BLX-style blend crossover.
                (0..dim)
                    .map(|g| {
                        let (a, b) = (pop[p1][g], pop[p2][g]);
                        let (lo, hi) = (a.min(b), a.max(b));
                        let span = hi - lo;
                        if span == 0.0 {
                            a
                        } else {
                            rng.gen_range((lo - 0.3 * span)..=(hi + 0.3 * span))
                        }
                    })
                    .collect::<Vec<f64>>()
            } else {
                pop[p1].clone()
            };
            for (g, gene) in child.iter_mut().enumerate() {
                if rng.gen::<f64>() < cfg.mutation_rate {
                    let width = bounds[g].1 - bounds[g].0;
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen();
                    let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    *gene += normal * width * cfg.mutation_scale;
                }
                *gene = gene.clamp(bounds[g].0, bounds[g].1);
            }
            next.push(child);
        }
        pop = next;
        fit = pop.iter().map(|g| fitness(g)).collect();
        best_idx = argmax(&fit);
        if fit[best_idx] > best.1 {
            best = (pop[best_idx].clone(), fit[best_idx]);
        }
    }
    best.0
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite fitness"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

fn tournament(pop: &[Vec<f64>], fit: &[f64], size: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..pop.len());
    for _ in 1..size.max(1) {
        let c = rng.gen_range(0..pop.len());
        if fit[c] > fit[best] {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximizes_negative_sphere() {
        // max -(x-3)^2 - (y+1)^2, optimum at (3, -1).
        let bounds = [(-10.0, 10.0), (-10.0, 10.0)];
        let best = optimize(
            &bounds,
            |g| -((g[0] - 3.0).powi(2) + (g[1] + 1.0).powi(2)),
            &GaConfig {
                generations: 150,
                ..Default::default()
            },
        );
        assert!((best[0] - 3.0).abs() < 0.3, "x = {}", best[0]);
        assert!((best[1] + 1.0).abs() < 0.3, "y = {}", best[1]);
    }

    #[test]
    fn respects_bounds() {
        let bounds = [(-0.5, 10.0); 8];
        // Fitness pushes genes to +infinity; they must be clamped.
        let best = optimize(&bounds, |g| g.iter().sum(), &GaConfig::default());
        for (g, &(lo, hi)) in best.iter().zip(&bounds) {
            assert!(*g >= lo - 1e-9 && *g <= hi + 1e-9);
        }
        // And the GA should actually reach the upper corner.
        assert!(best.iter().sum::<f64>() > 0.9 * 8.0 * 10.0);
    }

    #[test]
    fn degenerate_bounds_fixed_genes() {
        let bounds = [(5.0, 5.0), (0.0, 1.0)];
        let best = optimize(&bounds, |g| -g[1], &GaConfig::default());
        assert_eq!(best[0], 5.0);
        assert!(best[1] < 0.2);
    }

    #[test]
    fn deterministic_per_seed() {
        let bounds = [(-5.0, 5.0); 3];
        let f = |g: &[f64]| -g.iter().map(|x| x * x).sum::<f64>();
        let a = optimize(
            &bounds,
            f,
            &GaConfig {
                seed: 42,
                ..Default::default()
            },
        );
        let b = optimize(
            &bounds,
            f,
            &GaConfig {
                seed: 42,
                ..Default::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn multimodal_rastrigin_like() {
        // 1-D multimodal: f(x) = -(x^2 - 8 cos(2πx)); global max near 0.
        let bounds = [(-5.0, 5.0)];
        let best = optimize(
            &bounds,
            |g| -(g[0] * g[0] - 8.0 * (2.0 * std::f64::consts::PI * g[0]).cos()),
            &GaConfig {
                generations: 200,
                population: 100,
                ..Default::default()
            },
        );
        assert!(best[0].abs() < 0.5, "x = {}", best[0]);
    }

    #[test]
    #[should_panic(expected = "at least one gene")]
    fn empty_bounds_panics() {
        optimize(&[], |_| 0.0, &GaConfig::default());
    }
}
