//! Baseline watermarkers (Sec. IV-D).
//!
//! The paper compares FreqyWM against two numeric database
//! watermarkers applied to the histogram-as-numeric-table:
//!
//! * [`wm_obt`] — Shehab et al., "Watermarking Relational Databases
//!   Using Optimization-Based Techniques" (TKDE'08): secret
//!   partitioning + per-partition maximisation/minimisation of a
//!   sum-of-sigmoids hiding statistic, solved with a genetic
//!   algorithm, integer-rounded for frequency counts;
//! * [`wm_rvs`] — Li et al. reversible watermarking: keyed
//!   low-significant-digit substitution with exact recovery data.
//!
//! Both destroy the token ranking and introduce orders of magnitude
//! more histogram distortion than FreqyWM — the point of Fig. 3.
//! The GA itself lives in [`ga`] and is reusable.

pub mod ga;
pub mod wm_obt;
pub mod wm_rvs;

pub use wm_obt::{WmObt, WmObtConfig};
pub use wm_rvs::{WmRvs, WmRvsConfig};
