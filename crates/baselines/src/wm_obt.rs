//! WM-OBT: optimisation-based database watermarking
//! (Shehab, Bertino, Ghafoor — TKDE'08), adapted to histogram data as
//! Sec. IV-D describes.
//!
//! Embedding: tokens are assigned to `m` secret partitions by a keyed
//! hash. Partition `p` encodes watermark bit `bits[p mod |bits|]` by
//! shifting its frequency values so a *hiding statistic* — the
//! sigmoid-smoothed fraction of values above `mean + c·σ` — is
//! maximised (bit 1) or minimised (bit 0), subject to per-value change
//! constraints. The paper allows changes in `[-0.5, 10]`; the reported
//! distortion (mean change 444, σ 855.91 on counts of this magnitude)
//! implies the constraint is *relative*: each value may move by
//! `δ·v` with `δ ∈ [-0.5, 10]`, which is how we implement it.
//! The inner optimisation is the genetic algorithm from [`crate::ga`],
//! and final values are rounded to integers (frequencies cannot be
//! fractional).
//!
//! Decoding recomputes the statistic per partition and thresholds it
//! (the paper's decoding threshold 0.0966 minimises decoding error).

use crate::ga::{optimize, GaConfig};
use freqywm_crypto::hmac::hmac_sha256;
use freqywm_data::histogram::Histogram;
use freqywm_data::token::Token;

/// WM-OBT parameters (defaults follow the paper's comparison setup).
#[derive(Debug, Clone, PartialEq)]
pub struct WmObtConfig {
    /// Number of secret partitions (paper: 20, ~50 tokens each on 1K).
    pub partitions: usize,
    /// The watermark bit string (paper: `[1, 1, 0, 1, 0]`).
    pub bits: Vec<bool>,
    /// Hiding-statistic offset `c` (paper "condition": 0.75).
    pub condition: f64,
    /// Allowed per-value *relative* change range: value `v` may become
    /// `v·(1 + δ)` with `δ` in this interval (paper: `[-0.5, 10]`).
    pub change_bounds: (f64, f64),
    /// Decoding threshold (paper: 0.0966).
    pub decoding_threshold: f64,
    /// GA settings for the per-partition optimisation.
    pub ga: GaConfig,
}

impl Default for WmObtConfig {
    fn default() -> Self {
        WmObtConfig {
            partitions: 20,
            bits: vec![true, true, false, true, false],
            condition: 0.75,
            change_bounds: (-0.5, 10.0),
            decoding_threshold: 0.0966,
            ga: GaConfig {
                population: 40,
                generations: 40,
                ..Default::default()
            },
        }
    }
}

/// The WM-OBT watermarker.
#[derive(Debug, Clone)]
pub struct WmObt {
    config: WmObtConfig,
    key: Vec<u8>,
}

impl WmObt {
    pub fn new(config: WmObtConfig, key: &[u8]) -> Self {
        assert!(config.partitions > 0, "need at least one partition");
        assert!(!config.bits.is_empty(), "need at least one watermark bit");
        WmObt {
            config,
            key: key.to_vec(),
        }
    }

    /// Secret partition of a token.
    fn partition_of(&self, token: &Token) -> usize {
        let mac = hmac_sha256(&self.key, token.as_bytes());
        (u64::from_be_bytes(mac[..8].try_into().expect("8 bytes")) % self.config.partitions as u64)
            as usize
    }

    /// Sigmoid-smoothed fraction of `values` above `mean + c·σ`.
    fn hiding_statistic(&self, values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let sd = var.sqrt().max(1e-9);
        let thresh = mean + self.config.condition * sd;
        values
            .iter()
            .map(|v| 1.0 / (1.0 + (-(v - thresh) / sd).exp()))
            .sum::<f64>()
            / n
    }

    /// Embeds the watermark; returns the (integer-rounded) watermarked
    /// histogram.
    pub fn embed(&self, hist: &Histogram) -> Histogram {
        // Group entries by partition.
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); self.config.partitions];
        let entries = hist.entries();
        for (idx, (t, _)) in entries.iter().enumerate() {
            parts[self.partition_of(t)].push(idx);
        }
        let mut new_counts: Vec<f64> = entries.iter().map(|(_, c)| *c as f64).collect();
        for (p, members) in parts.iter().enumerate() {
            if members.len() < 2 {
                continue;
            }
            let bit = self.config.bits[p % self.config.bits.len()];
            let base: Vec<f64> = members.iter().map(|&i| new_counts[i]).collect();
            let bounds = vec![self.config.change_bounds; members.len()];
            let mut ga = self.config.ga;
            ga.seed = ga.seed.wrapping_add(p as u64);
            let sign = if bit { 1.0 } else { -1.0 };
            let best = optimize(
                &bounds,
                |delta| {
                    let shifted: Vec<f64> =
                        base.iter().zip(delta).map(|(v, d)| v * (1.0 + d)).collect();
                    sign * self.hiding_statistic(&shifted)
                },
                &ga,
            );
            for (&i, d) in members.iter().zip(&best) {
                new_counts[i] = (new_counts[i] * (1.0 + d)).max(0.0);
            }
        }
        Histogram::from_counts(
            entries
                .iter()
                .zip(&new_counts)
                .map(|((t, _), c)| (t.clone(), c.round() as u64)),
        )
    }

    /// Calibrates the decoding threshold on freshly marked data: the
    /// midpoint between the mean hiding statistic of maximised (bit 1)
    /// and minimised (bit 0) partitions — the paper's "decoding
    /// threshold minimizing the probability of decoding error" (0.0966
    /// in their setup, data-dependent in general).
    pub fn calibrate_threshold(&self, marked: &Histogram) -> f64 {
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); self.config.partitions];
        for (t, c) in marked.entries() {
            parts[self.partition_of(t)].push(*c as f64);
        }
        let (mut hi_sum, mut hi_n, mut lo_sum, mut lo_n) = (0.0f64, 0usize, 0.0f64, 0usize);
        for (p, values) in parts.iter().enumerate() {
            if values.len() < 2 {
                continue;
            }
            let stat = self.hiding_statistic(values);
            if self.config.bits[p % self.config.bits.len()] {
                hi_sum += stat;
                hi_n += 1;
            } else {
                lo_sum += stat;
                lo_n += 1;
            }
        }
        match (hi_n, lo_n) {
            (0, 0) => self.config.decoding_threshold,
            (_, 0) => hi_sum / hi_n as f64 - 1e-6,
            (0, _) => lo_sum / lo_n as f64 + 1e-6,
            _ => 0.5 * (hi_sum / hi_n as f64 + lo_sum / lo_n as f64),
        }
    }

    /// Decodes with an explicit threshold.
    pub fn decode_with(&self, hist: &Histogram, threshold: f64) -> Vec<bool> {
        self.decode_inner(hist, threshold)
    }

    /// Decodes the bit string from a (suspect) histogram using the
    /// configured threshold.
    pub fn decode(&self, hist: &Histogram) -> Vec<bool> {
        self.decode_inner(hist, self.config.decoding_threshold)
    }

    fn decode_inner(&self, hist: &Histogram, threshold: f64) -> Vec<bool> {
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); self.config.partitions];
        for (t, c) in hist.entries() {
            parts[self.partition_of(t)].push(*c as f64);
        }
        // Majority vote across the partitions carrying each bit.
        let nbits = self.config.bits.len();
        let mut votes = vec![(0usize, 0usize); nbits]; // (ones, zeros)
        for (p, values) in parts.iter().enumerate() {
            if values.len() < 2 {
                continue;
            }
            let stat = self.hiding_statistic(values);
            let bit = stat > threshold;
            if bit {
                votes[p % nbits].0 += 1;
            } else {
                votes[p % nbits].1 += 1;
            }
        }
        votes
            .into_iter()
            .map(|(ones, zeros)| ones >= zeros)
            .collect()
    }

    /// Convenience: does the decoded bit string match the embedded one?
    pub fn detect(&self, hist: &Histogram) -> bool {
        self.decode(hist) == self.config.bits
    }

    /// Detection with a calibrated threshold (see
    /// [`WmObt::calibrate_threshold`]).
    pub fn detect_with(&self, hist: &Histogram, threshold: f64) -> bool {
        self.decode_with(hist, threshold) == self.config.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
    use freqywm_stats::rank::rank_churn;
    use freqywm_stats::similarity::cosine_similarity;

    fn hist() -> Histogram {
        Histogram::from_counts(power_law_counts(&PowerLawConfig {
            distinct_tokens: 300,
            sample_size: 300_000,
            alpha: 0.5,
        }))
    }

    fn obt() -> WmObt {
        WmObt::new(WmObtConfig::default(), b"wm-obt-secret-key")
    }

    #[test]
    fn partitioning_is_stable_and_covers() {
        let w = obt();
        let h = hist();
        let mut seen = [0usize; 20];
        for (t, _) in h.entries() {
            let p = w.partition_of(t);
            assert!(p < 20);
            seen[p] += 1;
            assert_eq!(p, w.partition_of(t));
        }
        // ~15 tokens per partition on average; none wildly empty.
        assert!(seen.iter().filter(|&&c| c > 0).count() >= 18);
    }

    #[test]
    fn round_trip_decodes_embedded_bits() {
        let w = obt();
        let h = hist();
        let marked = w.embed(&h);
        let threshold = w.calibrate_threshold(&marked);
        assert!(
            w.detect_with(&marked, threshold),
            "decoded {:?} at threshold {threshold}",
            w.decode_with(&marked, threshold)
        );
    }

    #[test]
    fn calibrated_threshold_separates_bit_statistics() {
        let w = obt();
        let marked = w.embed(&hist());
        let threshold = w.calibrate_threshold(&marked);
        assert!(threshold.is_finite());
        assert!((0.0..=1.0).contains(&threshold), "threshold {threshold}");
    }

    #[test]
    fn distortion_is_visible_and_ranking_churns() {
        // The point of Sec. IV-D: WM-OBT wrecks the histogram shape.
        let w = obt();
        let h = hist();
        let marked = w.embed(&h);
        let (a, b) = h.paired_counts(&marked);
        let churn = rank_churn(&a, &b);
        assert!(
            churn > h.len() / 10,
            "WM-OBT should churn a sizeable share of ranks, got {churn}/{}",
            h.len()
        );
        let sim = cosine_similarity(&a, &b);
        assert!(
            sim < 0.999999,
            "distortion must dwarf FreqyWM's, sim = {sim}"
        );
    }

    #[test]
    fn change_constraints_hold_before_rounding() {
        let w = obt();
        let h = hist();
        let marked = w.embed(&h);
        for (t, c) in h.entries() {
            let new = marked.count(t).unwrap() as f64;
            let old = *c as f64;
            // Relative constraint: v·(1 + δ), δ ∈ [-0.5, 10].
            assert!(
                new >= (old * 0.5).floor() - 1.0 && new <= old * 11.0 + 1.0,
                "token {t}: {old} -> {new}"
            );
        }
    }

    #[test]
    fn wrong_key_fails_to_decode() {
        let w = obt();
        let h = hist();
        let marked = w.embed(&h);
        let threshold = w.calibrate_threshold(&marked);
        let other = WmObt::new(WmObtConfig::default(), b"a-different-key");
        // With the wrong partitioning every partition mixes maximised
        // and minimised tokens, so the per-bit statistics collapse to a
        // common value and the decoded string cannot reproduce the
        // alternating pattern.
        assert!(!other.detect_with(&marked, threshold));
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn zero_partitions_panics() {
        WmObt::new(
            WmObtConfig {
                partitions: 0,
                ..Default::default()
            },
            b"k",
        );
    }
}
