//! WM-RVS: reversible watermarking via keyed low-significant-digit
//! substitution (Li et al., TKDE'22), integer-adjusted for histogram
//! counts as Sec. IV-D describes.
//!
//! For every value the scheme picks a "random least significant
//! position" from the key and the attribute (here: the token), writes
//! a keyed digit there, and keeps the displaced digit as recovery
//! data. Detection checks the keyed digits; reversal restores the
//! original exactly (the defining reversibility property).

use freqywm_crypto::hmac::hmac_sha256;
use freqywm_data::histogram::Histogram;
use freqywm_data::token::Token;

/// WM-RVS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WmRvsConfig {
    /// Highest decimal position (exclusive) eligible for embedding:
    /// position 0 = ones digit, 1 = tens digit, … The paper's decimal
    /// scheme adapted to integers uses the low 2 positions.
    pub max_position: u32,
}

impl Default for WmRvsConfig {
    fn default() -> Self {
        WmRvsConfig { max_position: 2 }
    }
}

/// Per-token recovery record: the displaced digit and its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    pub token: Token,
    pub position: u32,
    pub original_digit: u8,
}

/// The WM-RVS watermarker.
#[derive(Debug, Clone)]
pub struct WmRvs {
    config: WmRvsConfig,
    key: Vec<u8>,
}

impl WmRvs {
    pub fn new(config: WmRvsConfig, key: &[u8]) -> Self {
        assert!(config.max_position > 0, "need at least one digit position");
        WmRvs {
            config,
            key: key.to_vec(),
        }
    }

    /// Keyed (position, digit) for a token.
    fn mark_of(&self, token: &Token) -> (u32, u8) {
        let mac = hmac_sha256(&self.key, token.as_bytes());
        let position = (mac[0] as u32) % self.config.max_position;
        let digit = mac[1] % 10;
        (position, digit)
    }

    fn digit_at(value: u64, position: u32) -> u8 {
        ((value / 10u64.pow(position)) % 10) as u8
    }

    fn with_digit(value: u64, position: u32, digit: u8) -> u64 {
        let p = 10u64.pow(position);
        let old = (value / p) % 10;
        value - old * p + digit as u64 * p
    }

    /// Embeds the watermark; returns the marked histogram and the
    /// recovery data enabling exact reversal.
    pub fn embed(&self, hist: &Histogram) -> (Histogram, Vec<Recovery>) {
        let mut recovery = Vec::with_capacity(hist.len());
        let marked = Histogram::from_counts(hist.entries().iter().map(|(t, c)| {
            let (position, digit) = self.mark_of(t);
            let original_digit = Self::digit_at(*c, position);
            recovery.push(Recovery {
                token: t.clone(),
                position,
                original_digit,
            });
            (t.clone(), Self::with_digit(*c, position, digit))
        }));
        (marked, recovery)
    }

    /// Fraction of tokens whose keyed digit matches — 1.0 on freshly
    /// marked data, ~0.1 on unrelated data (a random digit matches one
    /// time in ten).
    pub fn detect_rate(&self, hist: &Histogram) -> f64 {
        if hist.is_empty() {
            return 0.0;
        }
        let hits = hist
            .entries()
            .iter()
            .filter(|(t, c)| {
                let (position, digit) = self.mark_of(t);
                Self::digit_at(*c, position) == digit
            })
            .count();
        hits as f64 / hist.len() as f64
    }

    /// Detection decision at a match-rate threshold (e.g. 0.9).
    pub fn detect(&self, hist: &Histogram, threshold: f64) -> bool {
        self.detect_rate(hist) >= threshold
    }

    /// Restores the original histogram from the marked one plus the
    /// recovery data.
    pub fn reverse(&self, marked: &Histogram, recovery: &[Recovery]) -> Histogram {
        let mut counts: Vec<(Token, u64)> = marked.entries().to_vec();
        let index: std::collections::HashMap<&Token, usize> = counts
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (t, i))
            .collect();
        let mut updates: Vec<(usize, u64)> = Vec::with_capacity(recovery.len());
        for r in recovery {
            if let Some(&i) = index.get(&r.token) {
                let restored = Self::with_digit(counts[i].1, r.position, r.original_digit);
                updates.push((i, restored));
            }
        }
        for (i, v) in updates {
            counts[i].1 = v;
        }
        Histogram::from_counts(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
    use freqywm_stats::rank::rank_churn;
    use proptest::prelude::*;

    fn hist() -> Histogram {
        Histogram::from_counts(power_law_counts(&PowerLawConfig {
            distinct_tokens: 300,
            sample_size: 300_000,
            alpha: 0.5,
        }))
    }

    fn rvs() -> WmRvs {
        WmRvs::new(WmRvsConfig::default(), b"wm-rvs-secret")
    }

    #[test]
    fn digit_helpers() {
        assert_eq!(WmRvs::digit_at(5432, 0), 2);
        assert_eq!(WmRvs::digit_at(5432, 1), 3);
        assert_eq!(WmRvs::digit_at(5432, 3), 5);
        assert_eq!(WmRvs::digit_at(7, 2), 0);
        assert_eq!(WmRvs::with_digit(5432, 1, 9), 5492);
        assert_eq!(WmRvs::with_digit(5432, 0, 0), 5430);
        assert_eq!(WmRvs::with_digit(7, 2, 3), 307);
    }

    #[test]
    fn fresh_mark_detects_fully() {
        let w = rvs();
        let (marked, _) = w.embed(&hist());
        assert!((w.detect_rate(&marked) - 1.0).abs() < 1e-12);
        assert!(w.detect(&marked, 0.9));
    }

    #[test]
    fn unmarked_data_matches_about_one_in_ten() {
        let w = rvs();
        let rate = w.detect_rate(&hist());
        assert!(rate < 0.3, "unmarked match rate {rate}");
        assert!(!w.detect(&hist(), 0.9));
    }

    #[test]
    fn reversal_is_exact() {
        let w = rvs();
        let h = hist();
        let (marked, recovery) = w.embed(&h);
        let restored = w.reverse(&marked, &recovery);
        assert_eq!(restored, h);
    }

    #[test]
    fn wrong_key_neither_detects_nor_reverses() {
        let w = rvs();
        let h = hist();
        let (marked, recovery) = w.embed(&h);
        let other = WmRvs::new(WmRvsConfig::default(), b"not-the-key");
        assert!(!other.detect(&marked, 0.9));
        // Reversal with the wrong key's recovery metadata produced by
        // the right key still works (positions stored explicitly)…
        let restored = w.reverse(&marked, &recovery);
        assert_eq!(restored, h);
    }

    #[test]
    fn ranking_churn_is_substantial() {
        // Sec. IV-D: WM-RVS changed the rank of 987/1000 tokens.
        let w = rvs();
        let h = hist();
        let (marked, _) = w.embed(&h);
        let (a, b) = h.paired_counts(&marked);
        let churn = rank_churn(&a, &b);
        assert!(
            churn > h.len() / 4,
            "WM-RVS should churn many ranks: {churn}/{}",
            h.len()
        );
    }

    #[test]
    fn distortion_exceeds_freqywm_scale() {
        let w = rvs();
        let h = hist();
        let (marked, _) = w.embed(&h);
        let (a, b) = h.paired_counts(&marked);
        let sim = freqywm_stats::similarity::cosine_similarity(&a, &b) * 100.0;
        // Nothing catastrophic (digits move counts by < 100), but far
        // from FreqyWM's 99.9998%.
        assert!(sim < 99.9998);
        assert!(sim > 50.0);
    }

    proptest! {
        #[test]
        fn reversal_round_trips_any_counts(
            counts in proptest::collection::vec(0u64..1_000_000, 1..60)
        ) {
            let h = Histogram::from_counts(
                counts.iter().enumerate().map(|(i, &c)| (Token::new(format!("t{i}")), c)),
            );
            let w = rvs();
            let (marked, recovery) = w.embed(&h);
            prop_assert_eq!(w.reverse(&marked, &recovery), h);
        }
    }
}
