//! Shared helpers for the experiment runners (`src/bin/exp_*.rs`).
//!
//! Every runner regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index and EXPERIMENTS.md for paper-vs-measured
//! results) and prints the same rows/series the paper reports.

use freqywm_data::histogram::Histogram;
use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
use std::time::Instant;

/// The paper's synthetic testbed: `tokens` distinct tokens, `samples`
/// draws, skew `alpha`, as a deterministic expected-count histogram.
pub fn zipf_hist(alpha: f64, tokens: usize, samples: usize) -> Histogram {
    Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: tokens,
        sample_size: samples,
        alpha,
    }))
}

/// The paper's default synthetic scale (1K tokens, 1M samples).
pub fn paper_zipf(alpha: f64) -> Histogram {
    zipf_hist(alpha, 1_000, 1_000_000)
}

/// Runs `f` and returns `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header row plus a separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
