//! Shared helpers for the experiment runners (`src/bin/exp_*.rs`).
//!
//! Every runner regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index and EXPERIMENTS.md for paper-vs-measured
//! results) and prints the same rows/series the paper reports.

use freqywm_data::histogram::Histogram;
use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
use std::time::Instant;

/// The paper's synthetic testbed: `tokens` distinct tokens, `samples`
/// draws, skew `alpha`, as a deterministic expected-count histogram.
pub fn zipf_hist(alpha: f64, tokens: usize, samples: usize) -> Histogram {
    Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: tokens,
        sample_size: samples,
        alpha,
    }))
}

/// The paper's default synthetic scale (1K tokens, 1M samples).
pub fn paper_zipf(alpha: f64) -> Histogram {
    zipf_hist(alpha, 1_000, 1_000_000)
}

/// Runs `f` and returns `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header row plus a separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Returns the path passed via `--json-out PATH`, if the flag is
/// present on the command line. Runners that support machine-readable
/// output call this once at startup.
pub fn json_out_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json-out" {
            return Some(args.next().expect("--json-out needs a path").into());
        }
    }
    None
}

/// Renders one JSON object from `(key, already-rendered-value)` pairs.
/// Values must be valid JSON fragments (numbers, quoted strings, ...).
pub fn json_obj(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", body.join(","))
}

/// Writes `{"bench":NAME,"rows":[...]}` to `path`, one row per line so
/// baselines diff cleanly, and announces the write on stdout.
pub fn write_json_report(path: &std::path::Path, bench: &str, rows: &[String]) {
    let body = format!(
        "{{\"bench\":\"{bench}\",\"rows\":[\n  {}\n]}}\n",
        rows.join(",\n  ")
    );
    std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("# wrote {}", path.display());
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}
