//! Guess (brute-force) attack (Sec. V-A): empirical success rate of
//! forged secrets vs the owner's thresholds, plus the per-pair
//! false-positive probability feeding the Sec. III-B4 analysis.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_guess
//! ```

use freqywm_attacks::guess::{empirical_pair_fp_probability, guess_attack};
use freqywm_bench::{paper_zipf, print_header, print_row, timed};
use freqywm_core::generate::Watermarker;
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_crypto::prf::Secret;
use freqywm_stats::poisson_binomial::{markov_bound, PoissonBinomial};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ((), secs) = timed(|| {
        let hist = paper_zipf(0.5);
        let out = Watermarker::new(GenerationParams::default().with_z(131).with_budget(2.0))
            .generate_histogram(&hist, Secret::from_label("guess"))
            .expect("skewed data");
        let n = out.secrets.len();
        println!("\nSec. V-A — guess attack against a {n}-pair watermark (z = 131)");

        // Empirical per-pair FP probability for a random secret/pair.
        let mut rng = StdRng::seed_from_u64(3);
        println!("\nper-pair acceptance probability of a random guess:");
        let widths = [6, 12, 22, 22];
        print_header(
            &["t", "empirical", "P(S_n >= n/2) exact", "Markov bound"],
            &widths,
        );
        for t in [0u64, 1, 2, 4] {
            let p = empirical_pair_fp_probability(&out.watermarked, 131, t, 5_000, &mut rng);
            let pb = PoissonBinomial::new(vec![p; n]);
            print_row(
                &[
                    t.to_string(),
                    format!("{p:.4}"),
                    format!("{:.3e}", pb.survival(n / 2)),
                    format!("{:.3e}", markov_bound(pb.mean(), n / 2)),
                ],
                &widths,
            );
        }

        // The attack itself, at the owner's strict threshold.
        println!("\nmounting the attack (forged R + random pairs, t = 0, k = n/2):");
        let widths = [10, 12, 12, 18];
        print_header(
            &["attempts", "successes", "best pairs", "needed (k)"],
            &widths,
        );
        let k = n / 2;
        let params = DetectionParams::default().with_t(0).with_k(k);
        for attempts in [100usize, 1_000] {
            let report = guess_attack(&out.watermarked, 131, &params, attempts, n, &mut rng);
            print_row(
                &[
                    attempts.to_string(),
                    report.successes.to_string(),
                    report.best_accepted_pairs.to_string(),
                    k.to_string(),
                ],
                &widths,
            );
            assert_eq!(report.successes, 0);
        }
        println!(
            "\npaper: success probability negligible in the security parameter lambda (= 256 here);\n\
             the owner-side verification runs in linear time (see `cargo bench` pipeline results)."
        );
    });
    println!("\n[exp_guess: {secs:.1}s]");
}
