//! Sampling attack (Sec. V-B, Fig. 4).
//!
//! * `large` panel — samples 1%–90% with thresholds t ∈ {0,1,2,4,10}:
//!   the paper reports ~36% of pairs at t = 0 and 72%–99.5% as t grows
//!   from 1 to 10, roughly independent of the sample size once the
//!   sample exceeds the number of distinct tokens.
//! * `fig4` panel — extreme sample sizes 0.0007%–0.5% of 1M where the
//!   subsample may miss tokens entirely; detection stabilises once the
//!   sample exceeds ~5× the distinct-token count.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_sampling            # both panels
//! cargo run --release -p freqywm-bench --bin exp_sampling -- large
//! cargo run --release -p freqywm-bench --bin exp_sampling -- fig4
//! ```

use freqywm_attacks::sampling::{detect_scaled, thin_histogram};
use freqywm_bench::{mean, paper_zipf, print_header, print_row, timed};
use freqywm_core::generate::Watermarker;
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_core::secret::SecretList;
use freqywm_crypto::prf::Secret;
use freqywm_data::histogram::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

const REPEATS: usize = 10;

fn testbed() -> (Histogram, SecretList) {
    // Paper: alpha = 0.5, 1K tokens, 1M samples, z = 131, b = 2 -> 139 pairs.
    let hist = paper_zipf(0.5);
    let out = Watermarker::new(GenerationParams::default().with_z(131).with_budget(2.0))
        .generate_histogram(&hist, Secret::from_label("sampling"))
        .expect("skewed data");
    (out.watermarked, out.secrets)
}

fn rate_at(
    wm: &Histogram,
    secrets: &SecretList,
    fraction: f64,
    t: u64,
    rng: &mut StdRng,
) -> (f64, f64) {
    let mut rates = Vec::with_capacity(REPEATS);
    let mut distinct = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        let sample = thin_histogram(wm, fraction, rng);
        distinct.push(sample.len() as f64);
        let d = detect_scaled(
            &sample,
            secrets,
            &DetectionParams::default().with_t(t).with_k(1),
            fraction,
        );
        rates.push(d.accept_rate());
    }
    (mean(&rates), mean(&distinct))
}

fn large(wm: &Histogram, secrets: &SecretList) {
    println!(
        "\nSec. V-B — sampling attack, large samples ({} pairs, mean of {REPEATS} runs)",
        secrets.len()
    );
    let widths = [9, 9, 9, 9, 9, 9];
    print_header(&["sample%", "t=0", "t=1", "t=2", "t=4", "t=10"], &widths);
    let mut rng = StdRng::seed_from_u64(1);
    for pct in [90.0, 50.0, 20.0, 10.0, 5.0, 1.0] {
        let mut cells = vec![format!("{pct:.0}")];
        for t in [0u64, 1, 2, 4, 10] {
            let (rate, _) = rate_at(wm, secrets, pct / 100.0, t, &mut rng);
            cells.push(format!("{:.1}", rate * 100.0));
        }
        print_row(&cells, &widths);
    }
    println!("paper: t=0 ~36%; t=1..10 -> 72%..99.5% (roughly size-independent above 1K tokens)");
}

fn fig4(wm: &Histogram, secrets: &SecretList) {
    println!("\nFig. 4 — sampling attack at very low sample sizes (alpha = 0.5, 1M tokens)");
    let widths = [10, 11, 12, 9, 9, 9];
    print_header(
        &["sample%", "~tokens", "distinct", "t=2", "t=4", "t=10"],
        &widths,
    );
    let mut rng = StdRng::seed_from_u64(2);
    for pct in [0.0007, 0.0015, 0.003, 0.007, 0.015, 0.05, 0.1, 0.5] {
        let frac = pct / 100.0;
        let mut cells = vec![format!("{pct}"), format!("{:.0}", wm.total() as f64 * frac)];
        let mut distinct_seen = 0.0;
        for t in [2u64, 4, 10] {
            let (rate, distinct) = rate_at(wm, secrets, frac, t, &mut rng);
            distinct_seen = distinct;
            cells.push(format!("{:.1}", rate * 100.0));
        }
        cells.insert(2, format!("{distinct_seen:.0}"));
        print_row(&cells, &widths);
    }
    println!(
        "paper: detection stabilises once the sample holds >5x the 1K distinct tokens; below ~2x it \
         degrades quickly (and the sample has little utility left)"
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let ((), secs) = timed(|| {
        let (wm, secrets) = testbed();
        match arg.as_str() {
            "large" => large(&wm, &secrets),
            "fig4" => fig4(&wm, &secrets),
            _ => {
                large(&wm, &secrets);
                fig4(&wm, &secrets);
            }
        }
    });
    println!("\n[exp_sampling {arg}: {secs:.1}s]");
}
