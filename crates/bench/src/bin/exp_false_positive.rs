//! Sec. III-B4 — the false-positive analysis: `P(S_n ≥ k)` for n = 50
//! pairs with `p_m ~ U[0,1]`, evaluated exactly via the DFT of the
//! Poisson–Binomial characteristic function (the paper's method),
//! cross-checked with the exact DP, and bounded by Markov's inequality.
//! Also prints the limit behaviour in t (via `p_m = t/s`).
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_false_positive
//! ```

use freqywm_bench::{print_header, print_row, timed};
use freqywm_stats::poisson_binomial::{markov_bound, pair_false_positive_prob, PoissonBinomial};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let ((), secs) = timed(|| {
        let n = 50usize;
        let mut rng = StdRng::seed_from_u64(50);
        let probs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let pb = PoissonBinomial::new(probs);
        let mu = pb.mean();
        println!("\nSec. III-B4 — survival P(S_n >= k), n = {n}, p_m ~ U[0,1] (mu = {mu:.2})");
        let widths = [5, 14, 14, 14];
        print_header(&["k", "P (DFT)", "P (exact DP)", "Markov mu/k"], &widths);
        for k in [0usize, 1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50] {
            print_row(
                &[
                    k.to_string(),
                    format!("{:.3e}", pb.survival_dft(k)),
                    format!("{:.3e}", pb.survival(k)),
                    format!("{:.3e}", markov_bound(mu, k)),
                ],
                &widths,
            );
        }
        println!(
            "\nsurvival at k = n: {:.3e} (paper: \"0 when k goes to 50\")",
            pb.survival(n)
        );

        // Limit in t: p_m = t/s_ij with the moduli a watermark actually
        // uses (s drawn uniformly from [2, 131)).
        println!("\nlimit in t — P(S_n >= k) as the tolerance t shrinks (s ~ U[2,131), k = 10):");
        let widths = [6, 12, 14, 14];
        print_header(&["t", "mean p_m", "P(S>=10)", "Markov"], &widths);
        let s_draws: Vec<u64> = (0..n).map(|_| rng.gen_range(2u64..131)).collect();
        for t in [0u64, 1, 2, 4, 8, 16, 32] {
            let probs: Vec<f64> = s_draws
                .iter()
                .map(|&s| pair_false_positive_prob(t, s))
                .collect();
            let pb = PoissonBinomial::new(probs.clone());
            let mu = pb.mean();
            print_row(
                &[
                    t.to_string(),
                    format!("{:.4}", mu / n as f64),
                    format!("{:.3e}", pb.survival(10)),
                    format!("{:.3e}", markov_bound(mu, 10)),
                ],
                &widths,
            );
        }
        println!(
            "\nboth limits match the paper: P -> 0 as t -> 0 (mu -> 0) and as k -> n; P = 1 at k = 0."
        );
    });
    println!("\n[exp_false_positive: {secs:.1}s]");
}
