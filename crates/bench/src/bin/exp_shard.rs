//! Sharded-tier throughput: 1 vs 2 vs 4 local engine shards behind the
//! consistent-hash router, under a detect-heavy multi-tenant mix.
//!
//! Each configuration is a full in-process tier over real TCP: N
//! engines (2 workers each) behind `freqywm-net` reactors, one router
//! in front, C concurrent clients each cycling synchronous detects
//! across a pool of tenants (plus the occasional maintain, ~1:32, so
//! the mix is not read-only). Reported: requests/sec and the
//! client-observed p50/p99 round trip. Detects for different tenants
//! pipeline across shards, so throughput should scale with shard count
//! until the router thread or the client count saturates.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_shard
//! ```

use freqywm_bench::{
    json_obj, json_out_path, print_header, print_row, write_json_report, zipf_hist,
};
use freqywm_net::{serve_listener, NetConfig};
use freqywm_service::engine::{Engine, EngineConfig, ShardGate};
use freqywm_shard::{run_router, tenant_shard, RouterConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: usize = 32;
const CLIENTS: usize = 8;
const DETECTS_PER_CLIENT: usize = 160;
const TOKENS: usize = 120;

fn counts_json(hist: &freqywm_data::histogram::Histogram) -> String {
    let entries: Vec<String> = hist
        .entries()
        .iter()
        .map(|(t, c)| format!("[\"{}\",{}]", t.as_str(), c))
        .collect();
    format!("[{}]", entries.join(","))
}

struct Tier {
    engines: Vec<Arc<Engine>>,
    backend_handles: Vec<std::thread::JoinHandle<std::io::Result<()>>>,
    router_handle: std::thread::JoinHandle<std::io::Result<()>>,
    router_addr: SocketAddr,
}

fn start_tier(shards: usize) -> Tier {
    let mut engines = Vec::new();
    let mut backend_handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..shards {
        let engine = Arc::new(Engine::start(EngineConfig {
            workers: 2,
            queue_capacity: 8192,
            shard_gate: Some(ShardGate::new(format!("{i}/{shards}"), move |t| {
                tenant_shard(t, shards) == i
            })),
            ..EngineConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind backend");
        addrs.push(listener.local_addr().unwrap().to_string());
        let server_engine = Arc::clone(&engine);
        backend_handles.push(std::thread::spawn(move || {
            serve_listener(&server_engine, listener, NetConfig::default())
        }));
        engines.push(engine);
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let router_addr = listener.local_addr().unwrap();
    let config = RouterConfig::new(addrs);
    let router_handle = std::thread::spawn(move || run_router(listener, config));
    Tier {
        engines,
        backend_handles,
        router_handle,
        router_addr,
    }
}

fn request(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writer.write_all(line.as_bytes()).unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp
}

fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn bench_tier(shards: usize) -> (f64, f64, f64) {
    let tier = start_tier(shards);
    let (mut reader, mut writer) = connect(tier.router_addr);

    // Wait for every shard to come up, then onboard the tenant pool.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = request(&mut reader, &mut writer, "{\"op\":\"metrics\"}\n");
        if m.contains(&format!("\"shards_up\":{shards}")) {
            break;
        }
        assert!(Instant::now() < deadline, "tier never came up: {m}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let hist = zipf_hist(0.6, TOKENS, 150_000);
    let counts = counts_json(&hist);
    for i in 0..TENANTS {
        let t = format!("bench-{i:03}");
        let r = request(
            &mut reader,
            &mut writer,
            &format!("{{\"op\":\"register\",\"tenant\":\"{t}\",\"secret_label\":\"shard-{t}\"}}\n"),
        );
        assert!(r.contains("\"ok\":true"), "register: {r}");
        let r = request(
            &mut reader,
            &mut writer,
            &format!("{{\"op\":\"embed\",\"tenant\":\"{t}\",\"z\":101,\"counts\":{counts}}}\n"),
        );
        assert!(r.contains("chosen_pairs"), "embed: {r}");
    }

    // Detect-heavy mix: each client cycles the tenant pool, with a
    // maintain every 32 requests.
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let counts = counts.clone();
            let addr = tier.router_addr;
            std::thread::spawn(move || {
                let (mut reader, mut writer) = connect(addr);
                let mut latencies = Vec::with_capacity(DETECTS_PER_CLIENT);
                for i in 0..DETECTS_PER_CLIENT {
                    let tenant = format!("bench-{:03}", (c * 7 + i) % TENANTS);
                    let line = if i % 32 == 31 {
                        format!(
                            "{{\"op\":\"maintain\",\"tenant\":\"{tenant}\",\"updates\":[[\"tok0\",3]]}}\n"
                        )
                    } else {
                        format!(
                            "{{\"op\":\"detect\",\"tenant\":\"{tenant}\",\"t\":2,\"k\":1,\"counts\":{counts}}}\n"
                        )
                    };
                    let t0 = Instant::now();
                    let r = request(&mut reader, &mut writer, &line);
                    assert!(r.contains("\"ok\":true"), "{r}");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let rps = (CLIENTS * DETECTS_PER_CLIENT) as f64 / wall;

    // Tier drain: one shutdown op takes everything down.
    let ack = request(&mut reader, &mut writer, "{\"op\":\"shutdown\"}\n");
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    tier.router_handle.join().unwrap().expect("router");
    for h in tier.backend_handles {
        h.join().unwrap().expect("backend");
    }
    for e in tier.engines {
        e.shutdown();
    }
    (rps, q(0.50), q(0.99))
}

fn main() {
    println!(
        "# exp_shard — router tier over N local engine shards \
         ({TENANTS} tenants, {CLIENTS} clients × {DETECTS_PER_CLIENT} reqs, detect-heavy)"
    );
    let widths = [8usize, 10, 12, 12, 12];
    print_header(&["shards", "clients", "req/s", "p50 ms", "p99 ms"], &widths);
    let mut rows = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let (rps, p50, p99) = bench_tier(shards);
        print_row(
            &[
                shards.to_string(),
                CLIENTS.to_string(),
                format!("{rps:.0}"),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
            ],
            &widths,
        );
        rows.push(json_obj(&[
            ("shards", shards.to_string()),
            ("clients", CLIENTS.to_string()),
            ("req_per_sec", format!("{rps:.1}")),
            ("p50_ms", format!("{p50:.3}")),
            ("p99_ms", format!("{p99:.3}")),
        ]));
    }
    if let Some(path) = json_out_path() {
        write_json_report(&path, "exp_shard", &rows);
    }
}
