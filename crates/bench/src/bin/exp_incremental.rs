//! Extension experiment — Incremental FreqyWM (the paper's Sec. VI
//! future work, implemented in `freqywm-core::incremental`).
//!
//! A watermarked click-stream keeps growing: every epoch 10 % of the
//! tokens gain ~1 % volume and a few tokens churn out entirely. The
//! maintainer repairs broken pairs, retires unrepairable ones and
//! replenishes capacity — versus the strawman that re-watermarks from
//! scratch each epoch (minting a new secret and losing continuity).
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_incremental
//! ```

use freqywm_bench::{paper_zipf, print_header, print_row, timed};
use freqywm_core::detect::detect_histogram;
use freqywm_core::generate::Watermarker;
use freqywm_core::incremental::IncrementalWatermarker;
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_crypto::prf::Secret;
use freqywm_data::token::Token;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let ((), secs) = timed(|| {
        let hist = paper_zipf(0.5);
        let params = GenerationParams::default().with_z(131);
        let out = Watermarker::new(params)
            .generate_histogram(&hist, Secret::from_label("incremental-exp"))
            .expect("skewed data");
        let initial_pairs = out.secrets.len();
        let mut inc = IncrementalWatermarker::new(params, out.secrets, out.watermarked);
        let mut rng = StdRng::seed_from_u64(12);

        println!(
            "\nIncremental FreqyWM over 8 update epochs (initial watermark: {initial_pairs} pairs)"
        );
        let widths = [7, 9, 9, 9, 9, 8, 12, 13];
        print_header(
            &[
                "epoch",
                "updates",
                "intact",
                "repaired",
                "retired",
                "added",
                "repair cost",
                "verify t=0",
            ],
            &widths,
        );
        for epoch in 1..=8 {
            // Growth: 10% of tokens gain ~1% volume; 2 tokens churn out.
            let snapshot = inc.histogram().clone();
            let mut updates: Vec<(Token, i64)> = Vec::new();
            for (t, c) in snapshot.entries() {
                if rng.gen::<f64>() < 0.10 {
                    updates.push((t.clone(), (*c / 100 + 1) as i64));
                }
            }
            for (t, c) in snapshot.entries().iter().rev().take(2) {
                updates.push((t.clone(), -(*c as i64)));
            }
            // A few brand-new tokens enter the stream.
            for i in 0..3 {
                updates.push((
                    Token::new(format!("newcomer-{epoch}-{i}")),
                    rng.gen_range(500..5_000),
                ));
            }
            let report = inc.apply_updates(&updates, true).expect("maintainable");
            let verify = detect_histogram(
                inc.histogram(),
                inc.secrets(),
                &DetectionParams::default()
                    .with_t(0)
                    .with_k(inc.secrets().len()),
            );
            print_row(
                &[
                    epoch.to_string(),
                    updates.len().to_string(),
                    report.intact.to_string(),
                    report.repaired.to_string(),
                    report.retired.to_string(),
                    report.added.to_string(),
                    report.total_change.to_string(),
                    if verify.accepted {
                        "ACCEPT".into()
                    } else {
                        "REJECT".into()
                    },
                ],
                &widths,
            );
            assert!(verify.accepted, "maintenance must keep the watermark exact");
        }
        println!(
            "\nfinal capacity: {} pairs ({} initially); the secret list and owner identity are\n\
             preserved across all epochs — a from-scratch re-watermark would mint a new secret\n\
             each epoch and lose the ledger/dispute chronology.",
            inc.secrets().len(),
            initial_pairs
        );
    });
    println!("\n[exp_incremental: {secs:.1}s]");
}
