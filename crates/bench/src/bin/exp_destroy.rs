//! Destroy attacks (Sec. V-C, Fig. 5).
//!
//! * `fig5` — percentage of verified pairs vs tolerance t for (1) D_w,
//!   the untouched watermarked dataset; (2) D_non, a non-watermarked
//!   dataset over the same token space (α = 0.7) — the false-positive
//!   curve; (3) D_r, D_w after the random-within-boundaries attack;
//!   (4) D_1, D_w after the ±1%-of-boundaries attack. The usable (t, k)
//!   corridor lies between curves (2) and (3)/(4).
//! * `reorder` — Sec. V-C2: ±p% unconstrained noise for p in
//!   {10,30,50,60,80,90} at t = 4 (paper: 94/88/82/79/78/76 % of pairs).
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_destroy            # both
//! cargo run --release -p freqywm-bench --bin exp_destroy -- fig5
//! cargo run --release -p freqywm-bench --bin exp_destroy -- reorder
//! ```

use freqywm_attacks::destroy::{
    destroy_percentage, destroy_with_reordering, destroy_within_boundaries,
};
use freqywm_bench::{mean, paper_zipf, print_header, print_row, timed};
use freqywm_core::detect::detect_histogram;
use freqywm_core::generate::Watermarker;
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_core::secret::SecretList;
use freqywm_crypto::prf::Secret;
use freqywm_data::histogram::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

const REPEATS: usize = 10;

fn testbed() -> (Histogram, SecretList) {
    let hist = paper_zipf(0.5);
    let out = Watermarker::new(GenerationParams::default().with_z(131).with_budget(2.0))
        .generate_histogram(&hist, Secret::from_label("destroy"))
        .expect("skewed data");
    (out.watermarked, out.secrets)
}

fn rate(hist: &Histogram, secrets: &SecretList, t: u64) -> f64 {
    detect_histogram(
        hist,
        secrets,
        &DetectionParams::default().with_t(t).with_k(1),
    )
    .accept_rate()
}

fn fig5(wm: &Histogram, secrets: &SecretList) {
    println!(
        "\nFig. 5 — verified pairs (%) vs tolerance t ({} pairs, mean of {REPEATS} attack draws)",
        secrets.len()
    );
    let widths = [6, 9, 9, 11, 9];
    print_header(&["t", "D_w", "D_non", "D_random", "D_1pct"], &widths);
    let dnon = paper_zipf(0.7);
    for t in [0u64, 1, 2, 4, 6, 10] {
        let mut r_rand = Vec::new();
        let mut r_1pct = Vec::new();
        for rep in 0..REPEATS {
            let mut rng = StdRng::seed_from_u64(100 + rep as u64);
            r_rand.push(rate(&destroy_within_boundaries(wm, &mut rng), secrets, t));
            r_1pct.push(rate(&destroy_percentage(wm, 1.0, &mut rng), secrets, t));
        }
        print_row(
            &[
                t.to_string(),
                format!("{:.1}", rate(wm, secrets, t) * 100.0),
                format!("{:.1}", rate(&dnon, secrets, t) * 100.0),
                format!("{:.1}", mean(&r_rand) * 100.0),
                format!("{:.1}", mean(&r_1pct) * 100.0),
            ],
            &widths,
        );
    }
    println!(
        "paper: D_1pct ~90% at t=0 converging at ~90%; D_random >35% at t=0 reaching ~90% at t=10;\n\
         the (t, k) corridor between the D_non curve and the attack curves avoids both error kinds"
    );
}

fn reorder(wm: &Histogram, secrets: &SecretList) {
    println!("\nSec. V-C2 — destroy attack WITH re-ordering (t = 4, mean of {REPEATS} draws)");
    let widths = [8, 12, 14, 14];
    print_header(
        &["noise%", "verified%", "rank churn", "similarity%"],
        &widths,
    );
    for pct in [10.0, 30.0, 50.0, 60.0, 80.0, 90.0] {
        let mut rates = Vec::new();
        let mut churn = Vec::new();
        let mut sim = Vec::new();
        for rep in 0..REPEATS {
            let mut rng = StdRng::seed_from_u64(300 + rep as u64);
            let attacked = destroy_with_reordering(wm, pct, &mut rng);
            rates.push(rate(&attacked, secrets, 4));
            let (a, b) = wm.paired_counts(&attacked);
            churn.push(freqywm_stats::rank::rank_churn(&a, &b) as f64);
            sim.push(freqywm_stats::similarity::cosine_similarity(&a, &b) * 100.0);
        }
        print_row(
            &[
                format!("{pct:.0}"),
                format!("{:.1}", mean(&rates) * 100.0),
                format!("{:.0}/{}", mean(&churn), wm.len()),
                format!("{:.2}", mean(&sim)),
            ],
            &widths,
        );
    }
    println!(
        "paper: success rates 94/88/82/79/78/76 % for 10..90% noise at t=4 —\n\
              the watermark outlives the data (ranking and similarity are wrecked first)"
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let ((), secs) = timed(|| {
        let (wm, secrets) = testbed();
        match arg.as_str() {
            "fig5" => fig5(&wm, &secrets),
            "reorder" => reorder(&wm, &secrets),
            _ => {
                fig5(&wm, &secrets);
                reorder(&wm, &secrets);
            }
        }
    });
    println!("\n[exp_destroy {arg}: {secs:.1}s]");
}
