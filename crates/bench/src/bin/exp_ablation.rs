//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Matching weights** — the paper's `T − rm` versus the effective
//!    cost `T − min(rm, s−rm)`: pairs chosen, realised distortion.
//! 2. **Detection rule** — strict `rm ≤ t` versus symmetric
//!    `min(rm, s−rm) ≤ t` under the ±1% destroy attack.
//! 3. **Modulus floor** — `min_modulus ∈ {2, 8, 16, 32}`: how the
//!    choice trades pair count against the false-positive corridor
//!    (verified % on attacked data vs on non-watermarked data) and
//!    restores the paper's declining reorder curve.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_ablation
//! ```

use freqywm_attacks::destroy::{destroy_percentage, destroy_with_reordering};
use freqywm_bench::{mean, paper_zipf, print_header, print_row, timed};
use freqywm_core::detect::detect_histogram;
use freqywm_core::generate::Watermarker;
use freqywm_core::params::{DetectionParams, DetectionRule, GenerationParams, WeightScheme};
use freqywm_crypto::prf::Secret;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ((), secs) = timed(|| {
        let hist = paper_zipf(0.5);

        // --- 1. weight scheme ---
        println!("\nAblation 1 — matching weight scheme (alpha = 0.5, z = 131, b = 2)");
        let widths = [18, 9, 9, 14, 14];
        print_header(
            &[
                "weights",
                "matched",
                "chosen",
                "distortion%",
                "total change",
            ],
            &widths,
        );
        for (name, scheme) in [
            ("T - rm (paper)", WeightScheme::PaperRemainder),
            ("T - min(rm,s-rm)", WeightScheme::EffectiveCost),
        ] {
            let out =
                Watermarker::new(GenerationParams::default().with_z(131).with_weights(scheme))
                    .generate_histogram(&hist, Secret::from_label("abl-weights"))
                    .expect("skewed data");
            print_row(
                &[
                    name.to_string(),
                    out.report.matched_pairs.to_string(),
                    out.report.chosen_pairs.to_string(),
                    format!("{:.6}", 100.0 - out.report.similarity_pct),
                    out.report.total_change.to_string(),
                ],
                &widths,
            );
        }

        // --- 2. detection rule under attack ---
        println!("\nAblation 2 — detection rule under the ±1% destroy attack (10 draws)");
        let out = Watermarker::new(GenerationParams::default().with_z(131))
            .generate_histogram(&hist, Secret::from_label("abl-rule"))
            .expect("skewed data");
        let widths = [6, 14, 14];
        print_header(&["t", "strict%", "symmetric%"], &widths);
        for t in [0u64, 1, 2, 4] {
            let mut strict = Vec::new();
            let mut symmetric = Vec::new();
            for rep in 0..10 {
                let mut rng = StdRng::seed_from_u64(40 + rep);
                let attacked = destroy_percentage(&out.watermarked, 1.0, &mut rng);
                let base = DetectionParams::default().with_t(t).with_k(1);
                strict.push(
                    detect_histogram(
                        &attacked,
                        &out.secrets,
                        &base.with_rule(DetectionRule::Strict),
                    )
                    .accept_rate(),
                );
                symmetric.push(detect_histogram(&attacked, &out.secrets, &base).accept_rate());
            }
            print_row(
                &[
                    t.to_string(),
                    format!("{:.1}", mean(&strict) * 100.0),
                    format!("{:.1}", mean(&symmetric) * 100.0),
                ],
                &widths,
            );
        }
        println!(
            "(the symmetric rule catches remainders just below the modulus — paper's relaxation)"
        );

        // --- 3. modulus floor ---
        println!(
            "\nAblation 3 — modulus floor: pairs vs the false-positive corridor (t = 4, k = 1)\n\
             and the Sec. V-C2 reorder curve (verified % at 90% noise)"
        );
        let dnon = paper_zipf(0.7);
        let widths = [8, 8, 13, 13, 13, 15];
        print_header(
            &[
                "min_s",
                "pairs",
                "D_w t=4 %",
                "D_non t=4 %",
                "±1%atk t=4 %",
                "reorder90 t=4 %",
            ],
            &widths,
        );
        for min_s in [2u64, 8, 16, 32] {
            let out = Watermarker::new(
                GenerationParams::default()
                    .with_z(131)
                    .with_min_modulus(min_s),
            )
            .generate_histogram(&hist, Secret::from_label("abl-floor"))
            .expect("skewed data");
            let t4 = DetectionParams::default().with_t(4).with_k(1);
            let self_rate = detect_histogram(&out.watermarked, &out.secrets, &t4).accept_rate();
            let fp_rate = detect_histogram(&dnon, &out.secrets, &t4).accept_rate();
            let mut atk = Vec::new();
            let mut reorder = Vec::new();
            for rep in 0..10 {
                let mut rng = StdRng::seed_from_u64(70 + rep);
                let attacked = destroy_percentage(&out.watermarked, 1.0, &mut rng);
                atk.push(detect_histogram(&attacked, &out.secrets, &t4).accept_rate());
                let re = destroy_with_reordering(&out.watermarked, 90.0, &mut rng);
                reorder.push(detect_histogram(&re, &out.secrets, &t4).accept_rate());
            }
            print_row(
                &[
                    min_s.to_string(),
                    out.report.chosen_pairs.to_string(),
                    format!("{:.1}", self_rate * 100.0),
                    format!("{:.1}", fp_rate * 100.0),
                    format!("{:.1}", mean(&atk) * 100.0),
                    format!("{:.1}", mean(&reorder) * 100.0),
                ],
                &widths,
            );
        }
        println!(
            "(min_s = 2 is paper-faithful: many pairs but D_non saturates at t >= 1; raising the floor\n\
             re-opens the corridor between attacked-data and non-watermarked-data verification rates)"
        );
    });
    println!("\n[exp_ablation: {secs:.1}s]");
}
