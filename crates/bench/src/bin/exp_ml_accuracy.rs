//! Sec. VI — effect of (multi-)watermarking on ML model accuracy.
//!
//! The paper trains a next-URL predictor (embedding + LSTM + output
//! layer, 10 epochs, batch 128) on the original and the
//! 10×-watermarked eyeWnder click-stream: 82.33% vs 82.34% accuracy —
//! parity. We repeat the experiment with the from-scratch LSTM in
//! `freqywm-ml` on the simulated click-stream.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_ml_accuracy
//! ```

use freqywm_bench::{print_header, print_row, timed};
use freqywm_core::generate::Watermarker;
use freqywm_core::multiwm::multi_watermark;
use freqywm_core::params::GenerationParams;
use freqywm_crypto::prf::Secret;
use freqywm_data::token::Token;
use freqywm_ml::{train_and_evaluate, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ((), secs) = timed(|| {
        let mut rng = StdRng::seed_from_u64(9);
        let log = freqywm_data::realworld::eyewnder(150_000, &mut rng);
        // Ten successive watermarks, as in the paper's experiment.
        let wm = Watermarker::new(GenerationParams::default().with_z(131).with_budget(2.0));
        let secrets = (0..10)
            .map(|i| Secret::from_label(&format!("ml-round-{i}")))
            .collect();
        let multi = multi_watermark(&wm, &log.urls().histogram(), secrets).expect("rounds");
        let final_hist = multi.final_histogram().expect("rounds").clone();
        let wlog = log.with_url_counts(&final_hist, &mut rng);

        let original: Vec<Token> = log.urls().tokens().to_vec();
        let marked: Vec<Token> = wlog.urls().tokens().to_vec();
        println!(
            "\nSec. VI — next-URL prediction, original vs {}x-watermarked ({} vs {} events)",
            multi.rounds.len(),
            original.len(),
            marked.len()
        );
        let cfg = TrainConfig {
            window: 6,
            epochs: 10,
            batch_size: 128,
            vocab_size: 64,
            embedding: 16,
            hidden: 32,
            max_examples: 20_000,
            ..Default::default()
        };
        let (rep_orig, t_orig) = freqywm_bench::timed(|| train_and_evaluate(&original, &cfg));
        let (rep_mark, t_mark) = freqywm_bench::timed(|| train_and_evaluate(&marked, &cfg));

        let widths = [14, 12, 12, 12, 12, 10];
        print_header(
            &[
                "dataset",
                "train ex.",
                "test ex.",
                "final loss",
                "accuracy%",
                "time(s)",
            ],
            &widths,
        );
        print_row(
            &[
                "original".into(),
                rep_orig.train_examples.to_string(),
                rep_orig.test_examples.to_string(),
                format!("{:.4}", rep_orig.final_train_loss),
                format!("{:.2}", rep_orig.test_accuracy * 100.0),
                format!("{t_orig:.1}"),
            ],
            &widths,
        );
        print_row(
            &[
                "watermarked".into(),
                rep_mark.train_examples.to_string(),
                rep_mark.test_examples.to_string(),
                format!("{:.4}", rep_mark.final_train_loss),
                format!("{:.2}", rep_mark.test_accuracy * 100.0),
                format!("{t_mark:.1}"),
            ],
            &widths,
        );
        let gap = (rep_orig.test_accuracy - rep_mark.test_accuracy).abs() * 100.0;
        println!("\naccuracy gap: {gap:.2} percentage points (paper: 82.33% vs 82.34% — parity)");
        assert!(gap < 5.0, "watermarking must not move accuracy materially");
    });
    println!("\n[exp_ml_accuracy: {secs:.1}s]");
}
