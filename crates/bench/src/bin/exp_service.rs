//! Service throughput — the multi-tenant engine under a detect-heavy
//! marketplace load, with and without the PRF cache.
//!
//! T tenants each embed a watermark into their own synthetic dataset,
//! then R rounds of re-detection sweep every tenant (the marketplace
//! periodically re-verifying circulating copies). Reported: jobs/sec,
//! mean/p95 job latency and the PRF-cache hit rate, for worker counts
//! {1, 4} × cache {on, off}.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_service
//! ```

use freqywm_bench::{print_header, print_row, timed, zipf_hist};
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_crypto::prf::Secret;
use freqywm_service::engine::{Engine, EngineConfig};
use freqywm_service::job::{JobData, JobOutput, JobPayload, JobSpec, JobState};
use freqywm_service::prf_cache::PrfCacheConfig;

const TENANTS: usize = 8;
const ROUNDS: usize = 25;
const TOKENS: usize = 300;
const SAMPLES: usize = 300_000;

fn run_load(workers: usize, cache: PrfCacheConfig) -> (f64, f64, f64, f64, usize) {
    let engine = Engine::start(EngineConfig {
        workers,
        cache,
        queue_capacity: TENANTS * (ROUNDS + 2),
        ..EngineConfig::default()
    });

    // Phase 1: onboard + embed (not measured; embed is a one-time cost).
    let mut watermarked = Vec::with_capacity(TENANTS);
    for t in 0..TENANTS {
        let tenant = format!("tenant-{t:02}");
        engine
            .register_tenant(&tenant, Secret::from_label(&format!("svc-bench-{t}")))
            .expect("register");
        let hist = zipf_hist(0.4 + 0.05 * t as f64, TOKENS, SAMPLES);
        let state = engine.run(JobSpec::new(JobPayload::Embed {
            tenant: tenant.clone(),
            data: JobData::Histogram(hist),
            params: GenerationParams::default().with_z(101),
        }));
        let JobState::Completed(JobOutput::Embed(out)) = state else {
            panic!("embed failed: {state:?}");
        };
        watermarked.push((tenant, out.watermarked));
    }

    // Phase 2: the measured detect wave.
    let params = DetectionParams::default().with_t(0).with_k(1);
    let (ids, secs) = timed(|| {
        let mut ids = Vec::with_capacity(TENANTS * ROUNDS);
        for _ in 0..ROUNDS {
            for (tenant, hist) in &watermarked {
                let id = engine
                    .submit(JobSpec::new(JobPayload::Detect {
                        tenant: tenant.clone(),
                        data: JobData::Histogram(hist.clone()),
                        params,
                    }))
                    .expect("submit");
                ids.push(id);
            }
        }
        for id in &ids {
            let JobState::Completed(JobOutput::Detect(d)) = engine.wait(*id) else {
                panic!("detect failed");
            };
            assert!(d.outcome.accepted, "watermarked copy must verify");
        }
        ids
    });

    let m = engine.metrics();
    let jobs_per_sec = ids.len() as f64 / secs;
    let mean_us = m.latency.mean_micros();
    let p95_us = m.latency.quantile_upper_micros(0.95) as f64;
    let hit_rate = m.cache.hit_rate();
    let entries = m.cache.entries as usize;
    engine.shutdown();
    (jobs_per_sec, mean_us, p95_us, hit_rate, entries)
}

fn main() {
    println!(
        "\nService throughput — {TENANTS} tenants × {ROUNDS} re-detection rounds \
         ({TOKENS} tokens, {SAMPLES} samples each)"
    );
    let widths = [8usize, 7, 12, 12, 12, 10, 10];
    print_header(
        &[
            "workers", "cache", "jobs/s", "mean µs", "p95 µs", "hit rate", "entries",
        ],
        &widths,
    );
    for workers in [1usize, 4] {
        for cached in [false, true] {
            let cache = if cached {
                PrfCacheConfig::default()
            } else {
                PrfCacheConfig::disabled()
            };
            let (jps, mean_us, p95_us, hit, entries) = run_load(workers, cache);
            print_row(
                &[
                    workers.to_string(),
                    if cached { "on" } else { "off" }.to_string(),
                    format!("{jps:.0}"),
                    format!("{mean_us:.0}"),
                    format!("{p95_us:.0}"),
                    format!("{hit:.3}"),
                    entries.to_string(),
                ],
                &widths,
            );
        }
    }
    println!(
        "\n(hit rate counts the measured phase plus embeds' ledger writes; \
         detect-only traffic over a warm cache approaches 1.0)"
    );
}
