//! Service throughput — the multi-tenant engine under a detect-heavy
//! marketplace load, with and without the PRF cache.
//!
//! T tenants each embed a watermark into their own synthetic dataset,
//! then R rounds of re-detection sweep every tenant (the marketplace
//! periodically re-verifying circulating copies). Reported: jobs/sec,
//! mean/p95 job latency and the PRF-cache hit rate, for worker counts
//! {1, 4} × cache {on, off}.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_service
//! ```

use freqywm_bench::{
    json_obj, json_out_path, print_header, print_row, timed, write_json_report, zipf_hist,
};
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_crypto::prf::Secret;
use freqywm_service::engine::{Engine, EngineConfig};
use freqywm_service::job::{JobData, JobOutput, JobPayload, JobSpec, JobState};
use freqywm_service::prf_cache::PrfCacheConfig;

const TENANTS: usize = 8;
const ROUNDS: usize = 25;
const TOKENS: usize = 300;
const SAMPLES: usize = 300_000;

struct LoadStats {
    jobs_per_sec: f64,
    mean_us: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    hit_rate: f64,
    entries: usize,
}

fn run_load(workers: usize, cache: PrfCacheConfig) -> LoadStats {
    let engine = Engine::start(EngineConfig {
        workers,
        cache,
        queue_capacity: TENANTS * (ROUNDS + 2),
        ..EngineConfig::default()
    });

    // Phase 1: onboard + embed (not measured; embed is a one-time cost).
    let mut watermarked = Vec::with_capacity(TENANTS);
    for t in 0..TENANTS {
        let tenant = format!("tenant-{t:02}");
        engine
            .register_tenant(&tenant, Secret::from_label(&format!("svc-bench-{t}")))
            .expect("register");
        let hist = zipf_hist(0.4 + 0.05 * t as f64, TOKENS, SAMPLES);
        let state = engine.run(JobSpec::new(JobPayload::Embed {
            tenant: tenant.clone(),
            data: JobData::Histogram(hist),
            params: GenerationParams::default().with_z(101),
        }));
        let JobState::Completed(JobOutput::Embed(out)) = state else {
            panic!("embed failed: {state:?}");
        };
        watermarked.push((tenant, out.watermarked));
    }

    // Phase 2: the measured detect wave.
    let params = DetectionParams::default().with_t(0).with_k(1);
    let (ids, secs) = timed(|| {
        let mut ids = Vec::with_capacity(TENANTS * ROUNDS);
        for _ in 0..ROUNDS {
            for (tenant, hist) in &watermarked {
                let id = engine
                    .submit(JobSpec::new(JobPayload::Detect {
                        tenant: tenant.clone(),
                        data: JobData::Histogram(hist.clone()),
                        params,
                    }))
                    .expect("submit");
                ids.push(id);
            }
        }
        for id in &ids {
            let JobState::Completed(JobOutput::Detect(d)) = engine.wait(*id) else {
                panic!("detect failed");
            };
            assert!(d.outcome.accepted, "watermarked copy must verify");
        }
        ids
    });

    let m = engine.metrics();
    let stats = LoadStats {
        jobs_per_sec: ids.len() as f64 / secs,
        mean_us: m.latency.mean_micros(),
        p50_us: m.latency.quantile_upper_micros(0.50),
        p95_us: m.latency.quantile_upper_micros(0.95),
        p99_us: m.latency.quantile_upper_micros(0.99),
        hit_rate: m.cache.hit_rate(),
        entries: m.cache.entries as usize,
    };
    engine.shutdown();
    stats
}

fn main() {
    println!(
        "\nService throughput — {TENANTS} tenants × {ROUNDS} re-detection rounds \
         ({TOKENS} tokens, {SAMPLES} samples each)"
    );
    let widths = [8usize, 7, 12, 12, 12, 10, 10];
    print_header(
        &[
            "workers", "cache", "jobs/s", "mean µs", "p95 µs", "hit rate", "entries",
        ],
        &widths,
    );
    let mut rows = Vec::new();
    for workers in [1usize, 4] {
        for cached in [false, true] {
            let cache = if cached {
                PrfCacheConfig::default()
            } else {
                PrfCacheConfig::disabled()
            };
            let s = run_load(workers, cache);
            print_row(
                &[
                    workers.to_string(),
                    if cached { "on" } else { "off" }.to_string(),
                    format!("{:.0}", s.jobs_per_sec),
                    format!("{:.0}", s.mean_us),
                    format!("{}", s.p95_us),
                    format!("{:.3}", s.hit_rate),
                    s.entries.to_string(),
                ],
                &widths,
            );
            rows.push(json_obj(&[
                ("workers", workers.to_string()),
                ("cache", cached.to_string()),
                ("jobs_per_sec", format!("{:.1}", s.jobs_per_sec)),
                ("mean_us", format!("{:.1}", s.mean_us)),
                ("p50_us", s.p50_us.to_string()),
                ("p95_us", s.p95_us.to_string()),
                ("p99_us", s.p99_us.to_string()),
                ("hit_rate", format!("{:.4}", s.hit_rate)),
                ("entries", s.entries.to_string()),
            ]));
        }
    }
    if let Some(path) = json_out_path() {
        write_json_report(&path, "exp_service", &rows);
    }
    println!(
        "\n(hit rate counts the measured phase plus embeds' ledger writes; \
         detect-only traffic over a warm cache approaches 1.0)"
    );
}
