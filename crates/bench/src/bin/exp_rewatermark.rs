//! Re-watermarking / false-claim attack and the judge protocol
//! (Sec. V-D).
//!
//! The pirate re-runs `WM_Generate` on the stolen watermarked data and
//! claims ownership; the judge runs each secret against each dataset.
//! The paper reports the first (owner's) watermark detected with 92% of
//! pairs on the re-marked copy at t = 0.
//!
//! This runner reproduces the experiment twice: with the paper-faithful
//! selector, and with free-pair exclusion — the hardening DESIGN.md
//! motivates (without it the pirate's watermark largely pre-exists in
//! the owner's data and the four-run protocol cannot discriminate).
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_rewatermark
//! ```

use freqywm_attacks::rewatermark::rewatermark_attack;
use freqywm_bench::{paper_zipf, print_header, print_row, timed};
use freqywm_core::generate::Watermarker;
use freqywm_core::judge::{judge_dispute, Claim};
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_crypto::prf::Secret;

fn run_case(label: &str, exclude_free: bool) {
    let hist = paper_zipf(0.5);
    let params = GenerationParams::default()
        .with_z(131)
        .with_budget(2.0)
        .with_exclude_free_pairs(exclude_free);
    let wm = Watermarker::new(params);
    let owner_out = wm
        .generate_histogram(&hist, Secret::from_label("rightful-owner"))
        .expect("skewed data");
    let owner = Claim {
        histogram: owner_out.watermarked.clone(),
        secrets: owner_out.secrets,
    };
    let pirate = rewatermark_attack(&owner.histogram, &wm, Secret::from_label("pirate"))
        .expect("still watermarkable");

    let judge_params = DetectionParams::default()
        .with_t(0)
        .with_k((owner.secrets.len() / 4).max(1));
    let ruling = judge_dispute(&owner, &pirate, &judge_params);
    let widths = [22, 10, 10, 10, 10, 15];
    print_row(
        &[
            label.to_string(),
            format!("{:.1}", ruling.a_on_a.accept_rate() * 100.0),
            format!("{:.1}", ruling.a_on_b.accept_rate() * 100.0),
            format!("{:.1}", ruling.b_on_b.accept_rate() * 100.0),
            format!("{:.1}", ruling.b_on_a.accept_rate() * 100.0),
            format!("{:?}", ruling.verdict),
        ],
        &widths,
    );
}

fn main() {
    let ((), secs) = timed(|| {
        println!(
            "\nSec. V-D — re-watermarking dispute, four detection runs at t = 0, k = |pairs|/4"
        );
        println!("(own/own = self check; own/pirate = owner's mark on the re-marked copy; etc.)\n");
        let widths = [22, 10, 10, 10, 10, 15];
        print_header(
            &[
                "selector", "own/own%", "own/pir%", "pir/pir%", "pir/own%", "verdict",
            ],
            &widths,
        );
        run_case("paper-faithful", false);
        run_case("exclude-free-pairs", true);
        println!(
            "\npaper: first watermark detected with ~92% of pairs on the re-marked copy; the judge\n\
             declares the party whose secret verifies on BOTH datasets. Reproduction note: with the\n\
             paper-faithful selector the pirate's zero-cost pairs also verify on the owner's earlier\n\
             copy (pir/own is high), so the protocol cannot discriminate; excluding free pairs\n\
             restores the separation (pir/own collapses to ~0)."
        );
    });
    println!("\n[exp_rewatermark: {secs:.1}s]");
}
