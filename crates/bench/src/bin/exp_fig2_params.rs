//! Figure 2 (a/b/c): how skew α, modulo base z, and budget b affect the
//! number of chosen pairs for Optimal / Greedy / Random selection.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_fig2_params            # all three panels
//! cargo run --release -p freqywm-bench --bin exp_fig2_params -- fig2a  # one panel
//! ```

use freqywm_bench::{paper_zipf, print_header, print_row, timed};
use freqywm_core::generate::Watermarker;
use freqywm_core::params::{GenerationParams, Selection};
use freqywm_crypto::prf::Secret;
use freqywm_data::histogram::Histogram;

fn chosen(hist: &Histogram, params: GenerationParams, label: &str) -> usize {
    let wm = Watermarker::new(params);
    match wm.generate_histogram(hist, Secret::from_label(label)) {
        Ok(out) => out.report.chosen_pairs,
        Err(_) => 0, // uniform-ish data / exhausted budget -> no pairs
    }
}

fn strategies(seed: u64) -> [(&'static str, Selection); 3] {
    [
        ("optimal", Selection::Optimal),
        ("greedy", Selection::Greedy),
        ("random", Selection::Random { seed }),
    ]
}

fn fig2a() {
    println!("\nFig. 2a — chosen pairs vs skewness alpha (1K tokens, 1M samples, b = 2, z = 1031)");
    let widths = [7, 9, 9, 9, 10];
    print_header(&["alpha", "optimal", "greedy", "random", "|Le|"], &widths);
    for alpha in [0.05, 0.2, 0.5, 0.7, 0.9, 1.0] {
        let hist = paper_zipf(alpha);
        let mut cells = vec![format!("{alpha:.2}")];
        let mut eligible = 0usize;
        for (label, sel) in strategies(7) {
            let params = GenerationParams::default()
                .with_budget(2.0)
                .with_z(1031)
                .with_selection(sel);
            let wm = Watermarker::new(params);
            let n = match wm.generate_histogram(&hist, Secret::from_label("fig2a")) {
                Ok(out) => {
                    eligible = out.report.eligible_pairs;
                    out.report.chosen_pairs
                }
                Err(_) => 0,
            };
            let _ = label;
            cells.push(n.to_string());
        }
        cells.push(eligible.to_string());
        print_row(&cells, &widths);
    }
}

fn fig2b() {
    println!("\nFig. 2b — chosen pairs vs modulo base z (alpha = 0.5, b = 2)");
    let hist = paper_zipf(0.5);
    let widths = [7, 9, 9, 9, 10];
    print_header(&["z", "optimal", "greedy", "random", "|Le|"], &widths);
    for z in [10u64, 131, 521, 1031, 2053, 4099] {
        let mut cells = vec![z.to_string()];
        let mut eligible = 0usize;
        for (_, sel) in strategies(11) {
            let params = GenerationParams::default()
                .with_budget(2.0)
                .with_z(z)
                .with_selection(sel);
            let wm = Watermarker::new(params);
            let n = match wm.generate_histogram(&hist, Secret::from_label("fig2b")) {
                Ok(out) => {
                    eligible = out.report.eligible_pairs;
                    out.report.chosen_pairs
                }
                Err(_) => 0,
            };
            cells.push(n.to_string());
        }
        cells.push(eligible.to_string());
        print_row(&cells, &widths);
    }
}

fn fig2c() {
    println!("\nFig. 2c — heuristics vs optimal as the budget grows (alpha = 0.7, z = 1031)");
    let hist = paper_zipf(0.7);
    let widths = [9, 9, 9, 9, 13, 13];
    print_header(
        &[
            "budget",
            "optimal",
            "greedy",
            "random",
            "greedy/opt",
            "random/opt",
        ],
        &widths,
    );
    // The similarity budget only starts to bind around 1e-5 % on this
    // testbed (the knapsack admits cheapest pairs first, and a full
    // matching costs ~2e-5 % cosine distortion), so the sweep is
    // logarithmic; the paper's linear axis hides this regime.
    for b in [1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 2.0] {
        let opt = chosen(
            &hist,
            GenerationParams::default().with_budget(b).with_z(1031),
            "fig2c",
        );
        let grd = chosen(
            &hist,
            GenerationParams::default()
                .with_budget(b)
                .with_z(1031)
                .with_selection(Selection::Greedy),
            "fig2c",
        );
        let rnd = chosen(
            &hist,
            GenerationParams::default()
                .with_budget(b)
                .with_z(1031)
                .with_selection(Selection::Random { seed: 5 }),
            "fig2c",
        );
        let ratio = |x: usize| {
            if opt == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", x as f64 / opt as f64)
            }
        };
        print_row(
            &[
                format!("{b:.0e}"),
                opt.to_string(),
                grd.to_string(),
                rnd.to_string(),
                ratio(grd),
                ratio(rnd),
            ],
            &widths,
        );
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let (_, secs) = timed(|| match arg.as_str() {
        "fig2a" => fig2a(),
        "fig2b" => fig2b(),
        "fig2c" => fig2c(),
        _ => {
            fig2a();
            fig2b();
            fig2c();
        }
    });
    println!("\n[exp_fig2_params {arg}: {secs:.1}s]");
}
