//! Multi-watermarking (Sec. VI): ten successive watermarks on the
//! eyeWnder-style click-stream.
//!
//! * `discrepancy` — cumulative histogram distortion after 10 rounds
//!   (paper: 0.003% despite a 2% budget per round) and detectability of
//!   every round on the final version;
//! * `decompose` — Figs. 6–8: trend / seasonality / residual of the
//!   daily-visit series before vs after (insignificant change);
//! * `history` — Fig. 9: the daily browser-history volume itself.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_multiwm              # everything
//! cargo run --release -p freqywm-bench --bin exp_multiwm -- discrepancy
//! cargo run --release -p freqywm-bench --bin exp_multiwm -- decompose
//! cargo run --release -p freqywm-bench --bin exp_multiwm -- history
//! ```

use freqywm_bench::{print_header, print_row, timed};
use freqywm_core::detect::detect_histogram;
use freqywm_core::generate::Watermarker;
use freqywm_core::multiwm::{multi_watermark, MultiWatermark};
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_crypto::prf::Secret;
use freqywm_data::realworld::{eyewnder, ClickStream};
use freqywm_stats::decompose::{decompose_additive, max_abs_diff, series_correlation};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUNDS: usize = 10;

fn testbed() -> (ClickStream, MultiWatermark, ClickStream) {
    let mut rng = StdRng::seed_from_u64(6);
    let log = eyewnder(220_000, &mut rng);
    let wm = Watermarker::new(GenerationParams::default().with_z(131).with_budget(2.0));
    let secrets = (0..ROUNDS)
        .map(|i| Secret::from_label(&format!("multiwm-round-{i}")))
        .collect();
    let multi = multi_watermark(&wm, &log.urls().histogram(), secrets).expect("generates");
    let final_hist = multi.final_histogram().expect("at least one round").clone();
    let wlog = log.with_url_counts(&final_hist, &mut rng);
    (log, multi, wlog)
}

fn discrepancy(log: &ClickStream, multi: &MultiWatermark) {
    let original = log.urls().histogram();
    println!(
        "\nSec. VI — {} successive watermarks (budget 2% each), per-round view",
        multi.rounds.len()
    );
    let widths = [7, 9, 13, 18, 15];
    print_header(
        &[
            "round",
            "pairs",
            "round sim%",
            "detect on final",
            "pairs verified",
        ],
        &widths,
    );
    let fin = multi.final_histogram().expect("rounds exist");
    for (i, round) in multi.rounds.iter().enumerate() {
        let params = DetectionParams::default()
            .with_t(4)
            .with_k((round.secrets.len() / 2).max(1));
        let d = detect_histogram(fin, &round.secrets, &params);
        print_row(
            &[
                (i + 1).to_string(),
                round.secrets.len().to_string(),
                format!("{:.5}", round.report.similarity_pct),
                if d.accepted {
                    "ACCEPT".into()
                } else {
                    "REJECT".into()
                },
                format!("{}/{}", d.accepted_pairs, d.total_pairs),
            ],
            &widths,
        );
    }
    println!(
        "\ncumulative distortion after {} rounds: {:.5}% (paper: ~0.003%, i.e. far below rounds x b)",
        multi.rounds.len(),
        multi.cumulative_distortion_pct(&original)
    );
}

fn decompose(log: &ClickStream, wlog: &ClickStream) {
    let days = log.span_days();
    let before = log.daily_counts(days);
    let after = wlog.daily_counts(days);
    let db = decompose_additive(&before, 7);
    let da = decompose_additive(&after, 7);
    println!("\nFigs. 6-8 — feature analysis of the daily-visit series (weekly period)");
    let widths = [13, 13, 15, 15];
    print_header(
        &["component", "correlation", "max |diff|", "mean level"],
        &widths,
    );
    for (name, b, a) in [
        ("trend", &db.trend, &da.trend),
        ("seasonality", &db.seasonal, &da.seasonal),
        ("residual", &db.residual, &da.residual),
    ] {
        print_row(
            &[
                name.to_string(),
                format!("{:.6}", series_correlation(b, a)),
                format!("{:.2}", max_abs_diff(b, a)),
                format!("{:.1}", b.iter().sum::<f64>() / b.len() as f64),
            ],
            &widths,
        );
    }
    println!("paper: multi-watermarks introduce an insignificant change to all three components");
}

fn history(log: &ClickStream, wlog: &ClickStream) {
    let days = log.span_days();
    let before = log.daily_counts(days);
    let after = wlog.daily_counts(days);
    println!(
        "\nFig. 9 — daily browser-history volume, original vs 10x-watermarked (first 28 days)"
    );
    let widths = [6, 12, 12, 8];
    print_header(&["day", "original", "marked", "diff"], &widths);
    for d in 0..28usize.min(days as usize) {
        print_row(
            &[
                d.to_string(),
                format!("{:.0}", before[d]),
                format!("{:.0}", after[d]),
                format!("{:+.0}", after[d] - before[d]),
            ],
            &widths,
        );
    }
    println!(
        "full-series correlation: {:.6}, max |diff|: {:.0} visits/day",
        series_correlation(&before, &after),
        max_abs_diff(&before, &after)
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let ((), secs) = timed(|| {
        let (log, multi, wlog) = testbed();
        match arg.as_str() {
            "discrepancy" => discrepancy(&log, &multi),
            "decompose" => decompose(&log, &wlog),
            "history" => history(&log, &wlog),
            _ => {
                discrepancy(&log, &multi);
                decompose(&log, &wlog);
                history(&log, &wlog);
            }
        }
    });
    println!("\n[exp_multiwm {arg}: {secs:.1}s]");
}
