//! Fig. 3 + Sec. IV-D — FreqyWM vs the numeric database baselines
//! WM-OBT (Shehab et al.) and WM-RVS (Li et al.) applied to the same
//! histogram: similarity, mean/std of introduced changes, ranking
//! churn, and run time.
//!
//! Paper numbers (1K tokens, 1M samples, α = 0.5, b = 2, z = 131):
//! FreqyWM 99.9998% similarity, 0 rank changes; WM-OBT 54.28%, 998/1000
//! changed; WM-RVS 96%, 987/1000 changed. WM-OBT change stats 444 ±
//! 855.91; WM-RVS −69.43 ± 414.10.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_baselines
//! ```

use freqywm_baselines::{WmObt, WmObtConfig, WmRvs, WmRvsConfig};
use freqywm_bench::{paper_zipf, print_header, print_row, timed};
use freqywm_core::generate::Watermarker;
use freqywm_core::params::GenerationParams;
use freqywm_crypto::prf::Secret;
use freqywm_stats::moments::change_stats;
use freqywm_stats::rank::rank_churn;
use freqywm_stats::similarity::cosine_similarity;

fn main() {
    let ((), total) = timed(|| {
        let hist = paper_zipf(0.5);
        println!("\nFig. 3 / Sec. IV-D — FreqyWM vs WM-OBT vs WM-RVS (alpha = 0.5, 1K tokens, 1M samples)");
        let widths = [9, 13, 12, 12, 14, 9];
        print_header(
            &[
                "scheme",
                "similarity%",
                "mean change",
                "std change",
                "rank churn",
                "time(s)",
            ],
            &widths,
        );

        // FreqyWM, b = 2, z = 131.
        let (fw, t_fw) = timed(|| {
            Watermarker::new(GenerationParams::default().with_z(131).with_budget(2.0))
                .generate_histogram(&hist, Secret::from_label("fig3"))
                .expect("skewed data")
        });
        let (a, b) = hist.paired_counts(&fw.watermarked);
        let (mc, sc) = change_stats(&a, &b);
        print_row(
            &[
                "FreqyWM".into(),
                format!("{:.6}", cosine_similarity(&a, &b) * 100.0),
                format!("{mc:.2}"),
                format!("{sc:.2}"),
                format!("{}/{}", rank_churn(&a, &b), hist.len()),
                format!("{t_fw:.2}"),
            ],
            &widths,
        );

        // WM-OBT: 20 partitions, bits [1,1,0,1,0], GA optimisation.
        let obt = WmObt::new(WmObtConfig::default(), b"fig3-obt-key");
        let (marked_obt, t_obt) = timed(|| obt.embed(&hist));
        let (a, b) = hist.paired_counts(&marked_obt);
        let (mc, sc) = change_stats(&a, &b);
        let threshold = obt.calibrate_threshold(&marked_obt);
        print_row(
            &[
                "WM-OBT".into(),
                format!("{:.2}", cosine_similarity(&a, &b) * 100.0),
                format!("{mc:.2}"),
                format!("{sc:.2}"),
                format!("{}/{}", rank_churn(&a, &b), hist.len()),
                format!("{t_obt:.2}"),
            ],
            &widths,
        );
        assert!(
            obt.detect_with(&marked_obt, threshold),
            "WM-OBT must decode its own bits (threshold {threshold:.4})"
        );

        // WM-RVS: keyed low-significant-digit substitution.
        let rvs = WmRvs::new(WmRvsConfig::default(), b"fig3-rvs-key");
        let ((marked_rvs, _recovery), t_rvs) = timed(|| rvs.embed(&hist));
        let (a, b) = hist.paired_counts(&marked_rvs);
        let (mc, sc) = change_stats(&a, &b);
        print_row(
            &[
                "WM-RVS".into(),
                format!("{:.2}", cosine_similarity(&a, &b) * 100.0),
                format!("{mc:.2}"),
                format!("{sc:.2}"),
                format!("{}/{}", rank_churn(&a, &b), hist.len()),
                format!("{t_rvs:.2}"),
            ],
            &widths,
        );
        assert!(rvs.detect(&marked_rvs, 0.9));

        println!(
            "\npaper: FreqyWM 99.9998% / 0 rank changes; WM-OBT 54.28% / 998 changed (444 ± 855.91, >30 min);"
        );
        println!("       WM-RVS 96% / 987 changed (-69.43 ± 414.10, seconds)");
        println!("WM-OBT decoding threshold (calibrated, cf. paper's 0.0966): {threshold:.4}");
    });
    println!("\n[exp_baselines: {total:.1}s]");
}
