//! Sec. IV-C — multi-dimensional watermarking on the Adult dataset:
//! the composite token [Age, WorkClass] (paper: 481 distinct values,
//! 20 pairs chosen) versus the single-attribute Age token, including
//! the row-level transformation with carrier-row duplication.
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_multidim
//! ```

use freqywm_bench::{print_header, print_row, timed};
use freqywm_core::detect::detect_histogram;
use freqywm_core::generate::Watermarker;
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_crypto::prf::Secret;
use freqywm_data::realworld;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ((), secs) = timed(|| {
        let mut rng = StdRng::seed_from_u64(4);
        let table = realworld::adult(realworld::ADULT_DEFAULT_ROWS, &mut rng);
        println!("\nSec. IV-C — multi-dimensional tokens on the (simulated) Adult dataset");
        println!("rows: {}, z = 131, b = 2\n", table.len());
        let widths = [20, 10, 8, 9, 13, 13];
        print_header(
            &[
                "token",
                "distinct",
                "|Le|",
                "chosen",
                "similarity%",
                "round-trip",
            ],
            &widths,
        );
        let params = GenerationParams::default().with_z(131).with_budget(2.0);
        for cols in [vec!["age"], vec!["age", "workclass"]] {
            let label = format!("[{}]", cols.join(", "));
            let hist = table.tokens_over(&cols).histogram();
            let (wtable, secrets, report) = Watermarker::new(params)
                .watermark_table(&table, &cols, Secret::from_label(&label))
                .expect("adult histograms are skewed");
            // Detection on the *transformed table*, not just the histogram.
            let suspect = wtable.tokens_over(&cols).histogram();
            let d = detect_histogram(
                &suspect,
                &secrets,
                &DetectionParams::default().with_t(0).with_k(secrets.len()),
            );
            print_row(
                &[
                    label,
                    hist.len().to_string(),
                    report.eligible_pairs.to_string(),
                    report.chosen_pairs.to_string(),
                    format!("{:.4}", report.similarity_pct),
                    if d.accepted {
                        "ACCEPT".into()
                    } else {
                        "REJECT".into()
                    },
                ],
                &widths,
            );
            assert!(d.accepted);
            // Semantic integrity: every row keeps the full column set.
            assert!(wtable
                .rows()
                .iter()
                .all(|r| r.len() == table.columns().len()));
        }
        println!(
            "\npaper: [Age] 73 distinct -> 21 pairs; [Age, WorkClass] 481 distinct -> 20 pairs"
        );
    });
    println!("\n[exp_multidim: {secs:.1}s]");
}
