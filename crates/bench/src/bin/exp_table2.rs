//! Table II — validation on the three (simulated) real-world datasets:
//! distinct tokens, |Le|, pairs chosen by Optimal / Greedy / Random,
//! and generation / detection wall-times (z = 131, b = 2; the paper
//! averages 30 runs, we average over `RUNS` secrets).
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_table2
//! ```

use freqywm_bench::{mean, print_header, print_row, timed};
use freqywm_core::detect::detect_histogram;
use freqywm_core::generate::Watermarker;
use freqywm_core::params::{DetectionParams, GenerationParams, Selection};
use freqywm_crypto::prf::Secret;
use freqywm_data::histogram::Histogram;
use freqywm_data::realworld;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RUNS: usize = 5;

struct Row {
    name: &'static str,
    token: &'static str,
    rows: usize,
    hist: Histogram,
}

fn main() {
    let ((), secs) = timed(|| {
        let mut rng = StdRng::seed_from_u64(2);
        // Simulations per DESIGN.md §3; the taxi histogram runs at the
        // paper's full trip scale (histogram-level, nothing materialised).
        const TAXI_TRIPS: u64 = 12_000_000;
        let taxi_hist = realworld::chicago_taxi_hist(TAXI_TRIPS, 1.5, &mut rng);
        let eye = realworld::eyewnder(realworld::EYEWNDER_DEFAULT_EVENTS, &mut rng);
        let adult = realworld::adult(realworld::ADULT_DEFAULT_ROWS, &mut rng);
        let datasets = [
            Row {
                name: "ChicagoTaxi*",
                token: "Taxi ID",
                rows: TAXI_TRIPS as usize,
                hist: taxi_hist,
            },
            Row {
                name: "eyeWnder*",
                token: "URL",
                rows: realworld::EYEWNDER_DEFAULT_EVENTS,
                hist: eye.urls().histogram(),
            },
            Row {
                name: "Adult*",
                token: "Age",
                rows: realworld::ADULT_DEFAULT_ROWS,
                hist: adult.tokens_over(&["age"]).histogram(),
            },
        ];

        println!("\nTable II — validation on simulated real-world datasets (z = 131, b = 2, mean of {RUNS} runs)");
        println!("(* simulated stand-ins at documented scale; see DESIGN.md §3)");
        let widths = [13, 8, 9, 9, 8, 8, 8, 8, 10, 11];
        print_header(
            &[
                "dataset",
                "token",
                "rows",
                "distinct",
                "|Le|",
                "optimal",
                "greedy",
                "random",
                "gen (s)",
                "detect (s)",
            ],
            &widths,
        );
        for d in &datasets {
            let mut eligible = Vec::new();
            let mut optimal = Vec::new();
            let mut greedy = Vec::new();
            let mut random = Vec::new();
            let mut gen_time = Vec::new();
            let mut det_time = Vec::new();
            for run in 0..RUNS {
                let secret = Secret::from_label(&format!("table2-{}-{run}", d.name));
                let params = GenerationParams::default().with_z(131).with_budget(2.0);
                let (out, t_gen) = freqywm_bench::timed(|| {
                    Watermarker::new(params).generate_histogram(&d.hist, secret.clone())
                });
                let out = out.expect("real-world data has eligible pairs");
                gen_time.push(t_gen);
                eligible.push(out.report.eligible_pairs as f64);
                optimal.push(out.report.chosen_pairs as f64);
                let grd = Watermarker::new(params.with_selection(Selection::Greedy))
                    .generate_histogram(&d.hist, secret.clone())
                    .expect("greedy succeeds where optimal does");
                greedy.push(grd.report.chosen_pairs as f64);
                let rnd =
                    Watermarker::new(params.with_selection(Selection::Random { seed: run as u64 }))
                        .generate_histogram(&d.hist, secret.clone())
                        .expect("random succeeds where optimal does");
                random.push(rnd.report.chosen_pairs as f64);
                let det_params = DetectionParams::default()
                    .with_t(0)
                    .with_k(out.secrets.len());
                let (outcome, t_det) = freqywm_bench::timed(|| {
                    detect_histogram(&out.watermarked, &out.secrets, &det_params)
                });
                assert!(outcome.accepted, "round trip must verify");
                det_time.push(t_det);
            }
            print_row(
                &[
                    d.name.to_string(),
                    d.token.to_string(),
                    d.rows.to_string(),
                    d.hist.len().to_string(),
                    format!("{:.0}", mean(&eligible)),
                    format!("{:.0}", mean(&optimal)),
                    format!("{:.0}", mean(&greedy)),
                    format!("{:.0}", mean(&random)),
                    format!("{:.3}", mean(&gen_time)),
                    format!("{:.4}", mean(&det_time)),
                ],
                &widths,
            );
        }
        println!(
            "\npaper (full-scale, Python): Taxi |Le|=33308 opt=805 grd=770 rnd=773 gen=182.5s det=0.609s"
        );
        println!("                            eyeWnder |Le|=257 opt=38 grd=33 rnd=31 gen=420.8s det=0.053s");
        println!(
            "                            Adult |Le|=72 opt=21 grd=20 rnd=17 gen=0.03s det=0.001s"
        );
    });
    println!("\n[exp_table2: {secs:.1}s]");
}
