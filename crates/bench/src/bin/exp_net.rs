//! Network front-end throughput/latency — the epoll reactor under
//! loopback detect traffic, with and without an idle-connection herd.
//!
//! One in-process server (reactor + 2-worker engine) is driven by C
//! concurrent clients, each issuing R synchronous detect requests over
//! its own TCP connection. Reported: requests/sec and client-observed
//! p50/p99 round-trip latency. The final rows repeat the load with 500
//! extra idle connections parked on the reactor — epoll's wait cost is
//! O(ready), so the herd should cost no per-request work (on a
//! many-core box the rows match; a single-core runner shows scheduler
//! noise either way).
//!
//! ```sh
//! cargo run --release -p freqywm-bench --bin exp_net
//! ```

use freqywm_bench::{
    json_obj, json_out_path, print_header, print_row, write_json_report, zipf_hist,
};
use freqywm_crypto::prf::Secret;
use freqywm_net::{serve_listener, NetConfig};
use freqywm_service::engine::{Engine, EngineConfig};
use freqywm_service::job::{JobData, JobPayload, JobSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

const REQUESTS_PER_CLIENT: usize = 100;
const TOKENS: usize = 150;
const IDLE_HERD: usize = 500;

fn counts_json(hist: &freqywm_data::histogram::Histogram) -> String {
    let entries: Vec<String> = hist
        .entries()
        .iter()
        .map(|(t, c)| format!("[\"{}\",{}]", t.as_str(), c))
        .collect();
    format!("[{}]", entries.join(","))
}

fn run_load(addr: SocketAddr, clients: usize, detect_line: &str) -> (f64, f64, f64) {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let line = detect_line.to_string();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                let mut resp = String::new();
                for _ in 0..REQUESTS_PER_CLIENT {
                    let t0 = Instant::now();
                    writer.write_all(line.as_bytes()).unwrap();
                    resp.clear();
                    reader.read_line(&mut resp).unwrap();
                    assert!(resp.contains("\"ok\":true"), "{resp}");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let throughput = (clients * REQUESTS_PER_CLIENT) as f64 / wall;
    (throughput, q(0.50), q(0.99))
}

fn main() {
    let engine = Arc::new(Engine::start(EngineConfig {
        workers: 2,
        queue_capacity: 8192,
        ..EngineConfig::default()
    }));
    engine
        .register_tenant("bench", Secret::from_label("exp-net"))
        .expect("register");
    let hist = zipf_hist(0.6, TOKENS, 200_000);
    let state = engine.run(JobSpec::new(JobPayload::Embed {
        tenant: "bench".into(),
        data: JobData::Histogram(hist.clone()),
        params: freqywm_core::params::GenerationParams::default().with_z(101),
    }));
    assert!(
        matches!(state, freqywm_service::JobState::Completed(_)),
        "embed failed: {state:?}"
    );
    let detect_line = format!(
        "{{\"op\":\"detect\",\"tenant\":\"bench\",\"t\":2,\"k\":1,\"counts\":{}}}\n",
        counts_json(&hist)
    );

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server_engine = Arc::clone(&engine);
    let server = std::thread::spawn(move || {
        serve_listener(
            &server_engine,
            listener,
            NetConfig {
                max_conns: IDLE_HERD + 128,
                ..NetConfig::default()
            },
        )
    });

    println!("# exp_net — reactor loopback detect load ({TOKENS} tokens, {REQUESTS_PER_CLIENT} req/client)");
    let widths = [14usize, 10, 12, 12, 12];
    print_header(
        &["idle conns", "clients", "req/s", "p50 ms", "p99 ms"],
        &widths,
    );
    let mut rows = Vec::new();
    let record =
        |rows: &mut Vec<String>, idle: usize, clients: usize, rps: f64, p50: f64, p99: f64| {
            print_row(
                &[
                    idle.to_string(),
                    clients.to_string(),
                    format!("{rps:.0}"),
                    format!("{p50:.3}"),
                    format!("{p99:.3}"),
                ],
                &widths,
            );
            rows.push(json_obj(&[
                ("idle_conns", idle.to_string()),
                ("clients", clients.to_string()),
                ("req_per_sec", format!("{rps:.1}")),
                ("p50_ms", format!("{p50:.3}")),
                ("p99_ms", format!("{p99:.3}")),
            ]));
        };
    for &clients in &[1usize, 4, 16] {
        let (rps, p50, p99) = run_load(addr, clients, &detect_line);
        record(&mut rows, 0, clients, rps, p50, p99);
    }

    // Park an idle herd on the reactor and repeat.
    let herd: Vec<TcpStream> = (0..IDLE_HERD)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    for &clients in &[4usize, 16] {
        let (rps, p50, p99) = run_load(addr, clients, &detect_line);
        record(&mut rows, IDLE_HERD, clients, rps, p50, p99);
    }
    drop(herd);
    if let Some(path) = json_out_path() {
        write_json_report(&path, "exp_net", &rows);
    }

    // Drain: one shutdown op, then the reactor thread exits cleanly.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    server
        .join()
        .expect("reactor thread")
        .expect("reactor exit");
    let snap = engine.metrics();
    println!(
        "# served {} conns, {} bytes in, {} bytes out, evicted {}, cache hit rate {:.3}",
        snap.net.accepted,
        snap.net.bytes_in,
        snap.net.bytes_out,
        snap.net.evicted_slow,
        snap.cache.hit_rate(),
    );
    engine.shutdown();
}
