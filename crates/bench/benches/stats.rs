//! Criterion: the statistics substrate — Poisson-Binomial evaluations
//! (the Sec. III-B4 false-positive tail) and similarity metrics (the
//! budget check in the selection inner loop).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use freqywm_stats::poisson_binomial::PoissonBinomial;
use freqywm_stats::similarity::{cosine_similarity, Similarity, SimilarityMetric};

fn bench_poisson_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_binomial");
    for n in [50usize, 200, 800] {
        let probs: Vec<f64> = (0..n).map(|i| (i % 97) as f64 / 100.0).collect();
        let pb = PoissonBinomial::new(probs);
        group.bench_with_input(BenchmarkId::new("dp", n), &pb, |b, pb| {
            b.iter(|| black_box(pb).pmf_dp())
        });
        group.bench_with_input(BenchmarkId::new("dft", n), &pb, |b, pb| {
            b.iter(|| black_box(pb).pmf_dft())
        });
    }
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let a: Vec<u64> = (0..10_000u64).map(|i| 1_000_000 / (i + 1)).collect();
    let mut b: Vec<u64> = a.clone();
    b[17] += 3;
    b[42] -= 2;
    let mut group = c.benchmark_group("similarity-10k");
    group.bench_function("cosine", |bch| {
        bch.iter(|| cosine_similarity(black_box(&a), black_box(&b)))
    });
    group.bench_function("jensen_shannon", |bch| {
        bch.iter(|| SimilarityMetric::JensenShannon.similarity(black_box(&a), black_box(&b)))
    });
    group.finish();
}

criterion_group!(benches, bench_poisson_binomial, bench_similarity);
criterion_main!(benches);
