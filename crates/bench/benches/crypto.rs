//! Criterion: SHA-256 / HMAC / pair-PRF throughput — the inner loop of
//! eligible-pair generation (Table II's Gen column is dominated by it).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use freqywm_crypto::hmac::hmac_sha256;
use freqywm_crypto::prf::{pair_modulus, Secret};
use freqywm_crypto::sha256::sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    c.bench_function("hmac_sha256/64B", |b| {
        let key = [7u8; 32];
        let msg = [1u8; 64];
        b.iter(|| hmac_sha256(black_box(&key), black_box(&msg)))
    });
}

fn bench_pair_modulus(c: &mut Criterion) {
    let secret = Secret::from_label("bench");
    c.bench_function("pair_modulus", |b| {
        b.iter(|| {
            pair_modulus(
                black_box(&secret),
                black_box(b"youtube.com"),
                black_box(b"instagram.com"),
                black_box(131),
            )
        })
    });
}

criterion_group!(benches, bench_sha256, bench_hmac, bench_pair_modulus);
criterion_main!(benches);
