//! Criterion: end-to-end generation and detection latency — the Gen /
//! Detect columns of Table II, across dataset scales and selectors.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use freqywm_core::detect::detect_histogram;
use freqywm_core::eligible::eligible_pairs;
use freqywm_core::generate::Watermarker;
use freqywm_core::params::{DetectionParams, GenerationParams, Selection};
use freqywm_crypto::prf::Secret;
use freqywm_data::histogram::Histogram;
use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};

fn zipf(tokens: usize, samples: usize, alpha: f64) -> Histogram {
    Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: tokens,
        sample_size: samples,
        alpha,
    }))
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    for (name, hist) in [
        ("adult-73t", zipf(73, 32_561, 0.6)),
        ("zipf-1k", zipf(1_000, 1_000_000, 0.5)),
        ("zipf-4k", zipf(4_000, 4_000_000, 0.5)),
    ] {
        for (sel_name, sel) in [
            ("optimal", Selection::Optimal),
            ("greedy", Selection::Greedy),
        ] {
            let params = GenerationParams::default().with_z(131).with_selection(sel);
            group.bench_with_input(BenchmarkId::new(sel_name, name), &hist, |b, h| {
                b.iter(|| {
                    Watermarker::new(params)
                        .generate_histogram(black_box(h), Secret::from_label("bench"))
                        .expect("eligible pairs exist")
                })
            });
        }
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let hist = zipf(1_000, 1_000_000, 0.5);
    let out = Watermarker::new(GenerationParams::default().with_z(131))
        .generate_histogram(&hist, Secret::from_label("bench"))
        .expect("eligible pairs exist");
    let params = DetectionParams::default()
        .with_t(0)
        .with_k(out.secrets.len());
    c.bench_function("detection/zipf-1k", |b| {
        b.iter(|| detect_histogram(black_box(&out.watermarked), &out.secrets, &params))
    });
}

fn bench_eligible(c: &mut Criterion) {
    let hist = zipf(1_000, 1_000_000, 0.5);
    let secret = Secret::from_label("bench");
    c.bench_function("eligible_pairs/zipf-1k", |b| {
        b.iter(|| eligible_pairs(black_box(&hist), &secret, 131))
    });
}

criterion_group!(benches, bench_generation, bench_detection, bench_eligible);
criterion_main!(benches);
