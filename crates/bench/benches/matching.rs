//! Criterion: blossom maximum-weight matching vs the greedy heuristic
//! on eligible-pair graphs of increasing size — the optimal-vs-
//! heuristic runtime trade-off behind Fig. 2.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use freqywm_matching::blossom::max_weight_matching;
use freqywm_matching::graph::Graph;
use freqywm_matching::greedy::greedy_matching;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(vertices: usize, edges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(vertices);
    let mut added = 0usize;
    while added < edges {
        let u = rng.gen_range(0..vertices);
        let v = rng.gen_range(0..vertices);
        if u != v {
            g.add_edge(u, v, rng.gen_range(1..1_000));
            added += 1;
        }
    }
    g
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for (v, e) in [(100usize, 400usize), (400, 1_600), (1_000, 4_000)] {
        let g = random_graph(v, e, 42);
        group.bench_with_input(
            BenchmarkId::new("blossom", format!("{v}v{e}e")),
            &g,
            |b, g| b.iter(|| max_weight_matching(black_box(g), false)),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{v}v{e}e")),
            &g,
            |b, g| b.iter(|| greedy_matching(black_box(g))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
