//! Criterion: durable registry recovery throughput — what bounds
//! restart time for a marketplace with a long registration history.
//!
//! Three layers: raw frame scanning (I/O-side decode), full log replay
//! (decode + re-execution + chain verification), and snapshot restore
//! (the compacted path replay stays O(recent) thanks to).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use freqywm_core::secret::SecretList;
use freqywm_crypto::prf::Secret;
use freqywm_data::histogram::Histogram;
use freqywm_data::token::Token;
use freqywm_ledger::codec::scan_frames;
use freqywm_ledger::Ledger;
use freqywm_service::persist::DurableRegistry;
use freqywm_service::storage::{InMemoryStorage, Storage};

const KEY: &[u8] = b"bench-ledger-key";

fn wm_secrets(i: usize) -> SecretList {
    SecretList::new(
        vec![
            (
                Token::new(format!("tk-{i}-a")),
                Token::new(format!("tk-{i}-b")),
            ),
            (
                Token::new(format!("tk-{i}-c")),
                Token::new(format!("tk-{i}-d")),
            ),
        ],
        Secret::from_label(&format!("bench-wm-{i}")),
        131,
    )
}

fn wm_hist(i: usize) -> Histogram {
    Histogram::from_counts([
        (Token::new(format!("h{i}-hot")), 1_000 + i as u64),
        (Token::new(format!("h{i}-mid")), 400),
        (Token::new(format!("h{i}-cold")), 90),
    ])
}

/// Builds a history of `events` mutations (alternating registrations
/// and watermark records over 32 tenants) on fresh storage.
fn build_history(events: usize, snapshot_at_end: bool) -> InMemoryStorage {
    let storage = InMemoryStorage::new();
    let mut reg = DurableRegistry::open(KEY, Box::new(storage.clone()), 0).expect("open");
    for i in 0..events {
        let tenant = format!("tenant-{:02}", i % 32);
        let now = (i + 1) as u64;
        if i < 32 {
            reg.register_tenant(&tenant, Secret::from_label(&tenant), now)
                .expect("register");
        } else {
            reg.record_watermark(&tenant, wm_secrets(i), wm_hist(i), now)
                .expect("record");
        }
    }
    if snapshot_at_end {
        reg.snapshot_now().expect("snapshot");
    }
    storage
}

fn bench_frame_scan(c: &mut Criterion) {
    let storage = build_history(512, false);
    let log = storage.clone().read_log().expect("log");
    let mut g = c.benchmark_group("ledger/frame_scan");
    g.throughput(Throughput::Bytes(log.len() as u64));
    g.bench_function(format!("{}B", log.len()), |b| {
        b.iter(|| scan_frames(black_box(&log)).expect("clean log"))
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("ledger/replay");
    for events in [128usize, 512, 2048] {
        let storage = build_history(events, false);
        g.throughput(Throughput::Elements(events as u64));
        g.bench_function(format!("{events}ev"), |b| {
            b.iter(|| {
                let reg = DurableRegistry::open(KEY, Box::new(storage.clone()), 0).expect("replay");
                black_box(reg.ledger().head_hash())
            })
        });
    }
    g.finish();
}

fn bench_snapshot_restore(c: &mut Criterion) {
    let mut g = c.benchmark_group("ledger/snapshot_restore");
    for events in [512usize, 2048] {
        let storage = build_history(events, true);
        g.throughput(Throughput::Elements(events as u64));
        g.bench_function(format!("{events}ev"), |b| {
            b.iter(|| {
                let reg =
                    DurableRegistry::open(KEY, Box::new(storage.clone()), 0).expect("restore");
                black_box(reg.ledger().head_hash())
            })
        });
    }
    g.finish();
}

fn bench_chain_verify(c: &mut Criterion) {
    let mut ledger = Ledger::new(KEY);
    for i in 0..4096u64 {
        ledger.register(i + 1, &format!("subject-{i}"), format!("m{i}").as_bytes());
    }
    let entries = ledger.entries().to_vec();
    let mut g = c.benchmark_group("ledger/chain_verify");
    g.throughput(Throughput::Elements(entries.len() as u64));
    g.bench_function(format!("{}entries", entries.len()), |b| {
        b.iter(|| Ledger::from_entries(black_box(KEY), black_box(entries.clone())).expect("ok"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_frame_scan,
    bench_replay,
    bench_snapshot_restore,
    bench_chain_verify
);
criterion_main!(benches);
