//! An append-only, hash-chained fingerprint ledger.
//!
//! The paper's buyer-tracing use case (Sec. I): a seller creates a
//! different watermark per buyer and registers a *description* of it
//! in an immutable index (e.g. a blockchain); when an unauthorised
//! copy surfaces, its watermark identifies the leaking buyer, and the
//! registration timestamp gives chronological evidence for disputes.
//!
//! This crate provides that index as a library: each entry commits to
//! the previous entry's hash (a blockchain-style chain), records are
//! HMAC-authenticated with the ledger key, and [`Ledger::verify_chain`]
//! detects any tampering. Entries store a fingerprint digest — the
//! SHA-256 of the serialised secret list — so the ledger itself never
//! holds watermark secrets.

//!
//! The [`codec`] module adds the on-disk side: length-prefixed,
//! SHA-256-checksummed record frames with torn-tail tolerance, plus a
//! stable binary codec for [`Entry`] so chains survive restarts.

mod chain;
pub mod codec;

pub use chain::{Entry, Ledger, LedgerError};
