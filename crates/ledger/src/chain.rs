//! The hash chain.

use bytes::{BufMut, Bytes, BytesMut};
use freqywm_crypto::hmac::{digest_eq, hmac_sha256};
use freqywm_crypto::sha256::sha256;
use freqywm_crypto::Digest;
use std::fmt;

/// One registered fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Position in the chain (0-based).
    pub index: u64,
    /// Logical timestamp supplied by the caller (e.g. Unix seconds).
    pub timestamp: u64,
    /// Who the fingerprint was issued to (buyer id, marketplace id…).
    pub subject: String,
    /// SHA-256 of the serialised secret list — commits to the
    /// watermark without revealing it.
    pub fingerprint: Digest,
    /// Hash of the previous entry (all-zero for the genesis entry).
    pub prev_hash: Digest,
    /// HMAC over the canonical encoding, keyed with the ledger key.
    pub mac: Digest,
}

impl Entry {
    /// Canonical byte encoding (without the MAC).
    fn encode_unmacced(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.subject.len());
        buf.put_u64(self.index);
        buf.put_u64(self.timestamp);
        buf.put_u64(self.subject.len() as u64);
        buf.put_slice(self.subject.as_bytes());
        buf.put_slice(&self.fingerprint);
        buf.put_slice(&self.prev_hash);
        buf.freeze()
    }

    /// Hash identifying this entry in the chain.
    pub fn hash(&self) -> Digest {
        let mut buf = BytesMut::from(&self.encode_unmacced()[..]);
        buf.put_slice(&self.mac);
        sha256(&buf)
    }
}

/// Ledger errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The chain linkage or a MAC failed verification at this index.
    Corrupted { index: u64, reason: &'static str },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Corrupted { index, reason } => {
                write!(f, "ledger corrupted at entry {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// The append-only ledger.
#[derive(Debug, Clone)]
pub struct Ledger {
    key: Vec<u8>,
    entries: Vec<Entry>,
}

impl Ledger {
    /// Creates an empty ledger authenticated under `key`.
    pub fn new(key: &[u8]) -> Self {
        Ledger {
            key: key.to_vec(),
            entries: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Hash of the chain head (all-zero for an empty ledger) — the
    /// value a recovered replica must reproduce.
    pub fn head_hash(&self) -> Digest {
        self.entries.last().map(|e| e.hash()).unwrap_or([0u8; 32])
    }

    /// Rebuilds a ledger from previously persisted entries, verifying
    /// MACs and hash linkage while loading. This is the recovery path:
    /// a snapshot or replayed log that fails here was tampered with or
    /// corrupted on disk.
    pub fn from_entries(key: &[u8], entries: Vec<Entry>) -> Result<Self, LedgerError> {
        let ledger = Ledger {
            key: key.to_vec(),
            entries,
        };
        ledger.verify_chain()?;
        Ok(ledger)
    }

    /// Registers a fingerprint; returns the new entry's index.
    ///
    /// `secret_material` is hashed — typically the output of
    /// `SecretList::to_text()` — so the ledger never stores secrets.
    pub fn register(&mut self, timestamp: u64, subject: &str, secret_material: &[u8]) -> u64 {
        let prev_hash = self.head_hash();
        let mut entry = Entry {
            index: self.entries.len() as u64,
            timestamp,
            subject: subject.to_string(),
            fingerprint: sha256(secret_material),
            prev_hash,
            mac: [0u8; 32],
        };
        entry.mac = hmac_sha256(&self.key, &entry.encode_unmacced());
        let idx = entry.index;
        self.entries.push(entry);
        idx
    }

    /// Verifies the full chain: per-entry MACs, index continuity and
    /// hash linkage.
    pub fn verify_chain(&self) -> Result<(), LedgerError> {
        let mut prev = [0u8; 32];
        for (i, e) in self.entries.iter().enumerate() {
            if e.index != i as u64 {
                return Err(LedgerError::Corrupted {
                    index: i as u64,
                    reason: "index gap",
                });
            }
            if e.prev_hash != prev {
                return Err(LedgerError::Corrupted {
                    index: e.index,
                    reason: "broken link",
                });
            }
            let mac = hmac_sha256(&self.key, &e.encode_unmacced());
            if !digest_eq(&mac, &e.mac) {
                return Err(LedgerError::Corrupted {
                    index: e.index,
                    reason: "bad mac",
                });
            }
            prev = e.hash();
        }
        Ok(())
    }

    /// Finds the earliest entry matching a fingerprint — the
    /// leak-tracing lookup ("whose watermark is on this copy?").
    pub fn find_fingerprint(&self, secret_material: &[u8]) -> Option<&Entry> {
        let fp = sha256(secret_material);
        self.entries.iter().find(|e| digest_eq(&e.fingerprint, &fp))
    }

    /// Chronological comparison for dispute resolution: which of two
    /// fingerprints was registered first?
    pub fn earlier_of(&self, material_a: &[u8], material_b: &[u8]) -> Option<std::cmp::Ordering> {
        let a = self.find_fingerprint(material_a)?;
        let b = self.find_fingerprint(material_b)?;
        Some(a.timestamp.cmp(&b.timestamp).then(a.index.cmp(&b.index)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_with(n: usize) -> Ledger {
        let mut l = Ledger::new(b"marketplace-ledger-key");
        for i in 0..n {
            l.register(
                1_700_000_000 + i as u64,
                &format!("buyer-{i}"),
                format!("secret-{i}").as_bytes(),
            );
        }
        l
    }

    #[test]
    fn empty_ledger_verifies() {
        assert_eq!(Ledger::new(b"k").verify_chain(), Ok(()));
    }

    #[test]
    fn append_and_verify() {
        let l = ledger_with(10);
        assert_eq!(l.len(), 10);
        assert_eq!(l.verify_chain(), Ok(()));
    }

    #[test]
    fn lookup_by_fingerprint() {
        let l = ledger_with(5);
        let e = l.find_fingerprint(b"secret-3").expect("registered");
        assert_eq!(e.subject, "buyer-3");
        assert!(l.find_fingerprint(b"never-registered").is_none());
    }

    #[test]
    fn chronology() {
        let l = ledger_with(5);
        assert_eq!(
            l.earlier_of(b"secret-1", b"secret-4"),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(
            l.earlier_of(b"secret-4", b"secret-1"),
            Some(std::cmp::Ordering::Greater)
        );
        assert_eq!(l.earlier_of(b"secret-1", b"missing"), None);
    }

    #[test]
    fn tampering_with_subject_detected() {
        let mut l = ledger_with(4);
        l.entries[2].subject = "mallory".into();
        let err = l.verify_chain().unwrap_err();
        assert_eq!(
            err,
            LedgerError::Corrupted {
                index: 2,
                reason: "bad mac"
            }
        );
    }

    #[test]
    fn tampering_with_timestamp_detected() {
        let mut l = ledger_with(4);
        l.entries[1].timestamp = 1;
        assert!(l.verify_chain().is_err());
    }

    #[test]
    fn reordering_detected() {
        let mut l = ledger_with(4);
        l.entries.swap(1, 2);
        assert!(l.verify_chain().is_err());
    }

    #[test]
    fn deletion_detected() {
        let mut l = ledger_with(4);
        l.entries.remove(1);
        assert!(l.verify_chain().is_err());
    }

    #[test]
    fn recomputed_mac_with_wrong_key_detected() {
        // An attacker without the ledger key cannot re-MAC a forged entry.
        let mut l = ledger_with(3);
        l.entries[1].subject = "mallory".into();
        let forged_mac = hmac_sha256(b"wrong-key", &l.entries[1].encode_unmacced());
        l.entries[1].mac = forged_mac;
        assert!(l.verify_chain().is_err());
    }

    #[test]
    fn from_entries_restores_and_verifies() {
        let l = ledger_with(6);
        let restored = Ledger::from_entries(b"marketplace-ledger-key", l.entries().to_vec())
            .expect("clean entries restore");
        assert_eq!(restored.head_hash(), l.head_hash());
        assert_eq!(restored.len(), 6);
        // Wrong key: every MAC fails.
        assert!(Ledger::from_entries(b"wrong-key", l.entries().to_vec()).is_err());
        // Tampered entry: rejected while loading.
        let mut tampered = l.entries().to_vec();
        tampered[3].timestamp += 1;
        assert!(Ledger::from_entries(b"marketplace-ledger-key", tampered).is_err());
    }

    #[test]
    fn head_hash_tracks_appends() {
        let mut l = Ledger::new(b"k");
        assert_eq!(l.head_hash(), [0u8; 32]);
        l.register(1, "a", b"m");
        assert_eq!(l.head_hash(), l.entries().last().unwrap().hash());
    }

    #[test]
    fn fingerprint_does_not_store_secret() {
        let l = ledger_with(1);
        let secret = b"secret-0";
        // The entry holds a hash, not the material.
        assert_eq!(l.entries()[0].fingerprint, sha256(secret));
        assert_ne!(&l.entries()[0].fingerprint[..], &secret[..]);
    }
}
