//! On-disk record framing and the ledger entry codec.
//!
//! The durable registry log is a sequence of *frames*:
//!
//! ```text
//! ┌────────────┬─────────────┬─────────────────┬──────────────────────┐
//! │ u32 BE len │ u32 BE !len │ payload (len B) │ SHA-256(payload) 32 B │
//! └────────────┴─────────────┴─────────────────┴──────────────────────┘
//! ```
//!
//! The checksum reuses the workspace SHA-256 so a flipped bit anywhere
//! in a record is detected without new dependencies. A *torn* final
//! frame — a crash mid-append left fewer bytes than the frame declares,
//! or the trailing checksum was never completed — is tolerated and
//! reported via [`FrameScan::torn_bytes`]; the same damage anywhere
//! before the final frame is corruption and fails the scan.
//!
//! [`encode_entry`]/[`decode_entry`] give ledger [`Entry`] values a
//! stable binary form for snapshots, and [`Reader`] is the shared
//! little cursor other crates use to decode their own payloads.

use crate::chain::Entry;
use freqywm_crypto::sha256::sha256;
use freqywm_crypto::Digest;
use std::fmt;

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A frame before the final one failed its checksum or structure.
    Corrupt { offset: usize, reason: &'static str },
    /// A payload ended before a declared field (decoder-level).
    Truncated {
        offset: usize,
        expected: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Corrupt { offset, reason } => {
                write!(f, "corrupt record at byte {offset}: {reason}")
            }
            CodecError::Truncated { offset, expected } => {
                write!(f, "truncated payload at byte {offset}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Frame overhead: length prefix + its complement + checksum.
pub const FRAME_OVERHEAD: usize = 4 + 4 + 32;

/// Wraps a payload in a length-prefixed, checksummed frame.
///
/// The header stores the length and its bitwise complement. A torn
/// append can only ever leave a *prefix* of a frame, so a full header
/// whose two words disagree is corruption, not truncation — without
/// the complement, a bit flip in the length prefix could masquerade
/// as a torn tail and silently write off every frame after it.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&(!len).to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&sha256(payload));
    out
}

/// Result of scanning a log image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// Every fully written, checksum-verified payload in order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of a torn final frame that were dropped (0 = clean log).
    pub torn_bytes: usize,
}

/// Scans a log image into frames.
///
/// A short or checksum-failed *final* frame is treated as a torn
/// append (the crash the log is designed to survive) and dropped;
/// damage anywhere earlier is corruption.
pub fn scan_frames(bytes: &[u8]) -> Result<FrameScan, CodecError> {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        // The header itself may be torn (a crash wrote < 8 bytes)…
        let Some(header) = bytes.get(pos..pos + 8) else {
            return Ok(FrameScan {
                payloads,
                torn_bytes: bytes.len() - start,
            });
        };
        let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
        let check = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
        // …but a complete header that disagrees with itself was
        // damaged in place: appends write the header first, so no
        // torn write leaves 8 header bytes that fail this.
        if check != !len {
            return Err(CodecError::Corrupt {
                offset: start,
                reason: "length prefix damaged",
            });
        }
        let len = len as usize;
        let end = pos + 8 + len + 32;
        let Some(rest) = bytes.get(pos + 8..end) else {
            return Ok(FrameScan {
                payloads,
                torn_bytes: bytes.len() - start,
            });
        };
        let (payload, checksum) = rest.split_at(len);
        if sha256(payload) != checksum {
            if end == bytes.len() {
                // Final frame, full length but bad checksum: the crash
                // hit mid-overwrite of the tail. Tolerate.
                return Ok(FrameScan {
                    payloads,
                    torn_bytes: bytes.len() - start,
                });
            }
            return Err(CodecError::Corrupt {
                offset: start,
                reason: "checksum mismatch",
            });
        }
        payloads.push(payload.to_vec());
        pos = end;
    }
    Ok(FrameScan {
        payloads,
        torn_bytes: 0,
    })
}

// ---- payload encoding helpers ------------------------------------------

/// Appends a u64 (big-endian).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Sequential payload reader shared by the snapshot/event decoders.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn short(&self, expected: &'static str) -> CodecError {
        CodecError::Truncated {
            offset: self.pos,
            expected,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.short("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| self.short("u64"))?;
        self.pos += 8;
        Ok(u64::from_be_bytes(chunk.try_into().expect("8 bytes")))
    }

    pub fn digest(&mut self) -> Result<Digest, CodecError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 32)
            .ok_or_else(|| self.short("digest"))?;
        self.pos += 32;
        Ok(chunk.try_into().expect("32 bytes"))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u64()? as usize;
        let chunk = self
            .bytes
            .get(self.pos..self.pos + len)
            .ok_or_else(|| self.short("byte string"))?;
        self.pos += len;
        Ok(chunk)
    }

    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let offset = self.pos;
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Truncated {
            offset,
            expected: "utf-8 string",
        })
    }
}

// ---- ledger entry codec -------------------------------------------------

/// Binary form of one chain [`Entry`] (snapshots, audits).
pub fn encode_entry(e: &Entry) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + e.subject.len() + 96 + 8);
    put_u64(&mut buf, e.index);
    put_u64(&mut buf, e.timestamp);
    put_str(&mut buf, &e.subject);
    buf.extend_from_slice(&e.fingerprint);
    buf.extend_from_slice(&e.prev_hash);
    buf.extend_from_slice(&e.mac);
    buf
}

/// Decodes an [`Entry`] from a [`Reader`] positioned at one.
pub fn decode_entry(r: &mut Reader<'_>) -> Result<Entry, CodecError> {
    Ok(Entry {
        index: r.u64()?,
        timestamp: r.u64()?,
        subject: r.str()?.to_string(),
        fingerprint: r.digest()?,
        prev_hash: r.digest()?,
        mac: r.digest()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Ledger;

    fn frames(payloads: &[&[u8]]) -> Vec<u8> {
        payloads.iter().flat_map(|p| frame(p)).collect()
    }

    #[test]
    fn frame_round_trip() {
        let image = frames(&[b"alpha", b"", b"gamma-gamma"]);
        let scan = scan_frames(&image).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(
            scan.payloads,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma-gamma".to_vec()]
        );
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = scan_frames(&[]).unwrap();
        assert!(scan.payloads.is_empty());
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn every_torn_prefix_recovers_preceding_frames() {
        let image = frames(&[b"one", b"two", b"three"]);
        let f1 = frame(b"one").len();
        let f2 = f1 + frame(b"two").len();
        for cut in 0..image.len() {
            let scan = scan_frames(&image[..cut]).expect("torn tails are tolerated");
            let want = if cut < f1 {
                0
            } else if cut < f2 {
                1
            } else {
                2
            };
            assert_eq!(scan.payloads.len(), want, "cut at {cut}");
            assert_eq!(scan.torn_bytes > 0, cut != 0 && cut != f1 && cut != f2);
        }
    }

    #[test]
    fn mid_stream_corruption_is_an_error() {
        let mut image = frames(&[b"one", b"two"]);
        // Flip a payload byte of the FIRST frame (payload starts at 8).
        image[9] ^= 0xFF;
        assert!(matches!(
            scan_frames(&image),
            Err(CodecError::Corrupt { offset: 0, .. })
        ));
    }

    #[test]
    fn corrupted_length_prefix_is_an_error_not_a_torn_tail() {
        // A bit flip inflating an early frame's length must NOT be
        // written off as truncation — that would silently discard
        // every committed frame after it.
        let mut image = frames(&[b"one", b"two", b"three"]);
        image[2] ^= 0x80; // length word of frame 0
        let err = scan_frames(&image).unwrap_err();
        assert_eq!(
            err,
            CodecError::Corrupt {
                offset: 0,
                reason: "length prefix damaged"
            }
        );
        // Same flip in the complement word: also caught.
        let mut image = frames(&[b"one", b"two"]);
        image[6] ^= 0x01;
        assert!(scan_frames(&image).is_err());
    }

    #[test]
    fn final_frame_bad_checksum_is_torn() {
        let mut image = frames(&[b"one", b"two"]);
        let last = image.len() - 1;
        image[last] ^= 0xFF; // damage the trailing checksum
        let scan = scan_frames(&image).unwrap();
        assert_eq!(scan.payloads, vec![b"one".to_vec()]);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn entry_codec_round_trip() {
        let mut l = Ledger::new(b"codec-key");
        l.register(7, "alice", b"material-a");
        l.register(8, "bob, esq.", b"material-b");
        for e in l.entries() {
            let buf = encode_entry(e);
            let mut r = Reader::new(&buf);
            let back = decode_entry(&mut r).unwrap();
            assert!(r.is_empty());
            assert_eq!(&back, e);
        }
    }

    #[test]
    fn reader_rejects_short_payloads() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert!(matches!(r.str(), Err(CodecError::Truncated { .. })));
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(CodecError::Truncated { .. })));
    }
}
