//! Library backing the `freqywm` command-line tool.
//!
//! Split from `main.rs` so the argument parser and command logic are
//! unit-testable. Subcommands:
//!
//! * `generate` — watermark a token file, writing the watermarked file
//!   and the secret list;
//! * `detect`   — verify a suspect file against a secret list;
//! * `inspect`  — histogram statistics and watermark capacity;
//! * `attack`   — replay the paper's attacks on a watermarked file.

pub mod args;
pub mod commands;
pub mod top;

pub use args::{parse_args, Command};
pub use commands::run;
