//! `freqywm` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match freqywm_cli::parse_args(&args) {
        Ok(cmd) => {
            let mut stdout = std::io::stdout();
            freqywm_cli::run(cmd, &mut stdout)
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}
