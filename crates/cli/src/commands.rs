//! Command implementations.

use crate::args::{AttackKind, Command, EngineOpts, RouterOpts, ServeNetOpts, USAGE};
use freqywm_attacks::destroy::{destroy_with_reordering, destroy_within_boundaries};
use freqywm_core::detect::detect_dataset;
use freqywm_core::eligible::{eligible_pairs, r_max};
use freqywm_core::generate::Watermarker;
use freqywm_core::judge::{judge_dispute, Claim, Verdict};
use freqywm_core::params::{DetectionParams, GenerationParams};
use freqywm_core::secret::SecretList;
use freqywm_crypto::hex;
use freqywm_crypto::prf::Secret;
use freqywm_data::dataset::Dataset;
use freqywm_data::token::Token;
use freqywm_service::engine::{Engine, EngineConfig};
use freqywm_service::persist::DurableRegistry;
use freqywm_service::prf_cache::PrfCacheConfig;
use freqywm_service::proto;
use freqywm_service::storage::DiskLog;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;

fn ledger_key_bytes(key: &Option<String>) -> Vec<u8> {
    key.as_ref()
        .map(|k| k.as_bytes().to_vec())
        .unwrap_or_else(|| EngineConfig::default().ledger_key)
}

fn engine_config(opts: &EngineOpts) -> EngineConfig {
    EngineConfig {
        workers: opts.workers.max(1),
        queue_capacity: opts.queue.max(1),
        cache: if opts.no_cache {
            PrfCacheConfig::disabled()
        } else {
            PrfCacheConfig {
                shards: opts.cache_shards.max(1),
                capacity_per_shard: opts.cache_capacity,
            }
        },
        snapshot_every: opts.snapshot_every,
        ledger_key: ledger_key_bytes(&opts.ledger_key),
        shard_gate: opts.shard_id.map(|(i, n)| {
            freqywm_service::ShardGate::new(format!("{i}/{n}"), move |tenant| {
                freqywm_shard::tenant_shard(tenant, n) == i
            })
        }),
        slow_ms: opts.slow_ms,
        retain_snapshots: opts.retain_snapshots.max(2),
        retain_interval_ms: opts.retain_interval_ms.max(10),
        quota: {
            let mut quota = freqywm_service::QuotaConfig::default();
            quota.limits.embed = opts.quota_embed.unwrap_or(freqywm_service::UNLIMITED);
            quota.limits.detect = opts.quota_detect.unwrap_or(freqywm_service::UNLIMITED);
            quota.limits.maintain = opts.quota_maintain.unwrap_or(freqywm_service::UNLIMITED);
            if let Some(window_ms) = opts.quota_window_ms {
                quota.window_ms = window_ms;
            }
            quota
        },
        ..EngineConfig::default()
    }
}

/// Starts an engine for `serve`/`batch`: durable when `--data-dir`
/// was given, in-memory otherwise. With `follow` the engine opens as
/// a read-only replica of that primary (its data-dir still recovers
/// and verifies locally first).
fn start_engine(opts: &EngineOpts, follow: Option<String>) -> Result<Engine, String> {
    let mut config = engine_config(opts);
    config.follow = follow;
    match &opts.data_dir {
        Some(dir) => {
            let storage =
                DiskLog::open(dir).map_err(|e| format!("cannot open data-dir {dir}: {e}"))?;
            Engine::open(config, Box::new(storage))
                .map_err(|e| format!("cannot recover data-dir {dir}: {e}"))
        }
        None => Ok(Engine::start(config)),
    }
}

/// Clean engine teardown: checkpoint durable state (so the next open
/// replays nothing), then drain and join workers. Followers skip the
/// checkpoint — compacting a replica's log is the primary's job, and
/// a read-only registry refuses it anyway.
fn stop_engine(engine: &Engine, durable: bool) {
    if durable && !engine.is_follower() {
        let _ = engine.checkpoint();
    }
    engine.shutdown();
}

/// Binds the listen address and runs the epoll reactor until a
/// `shutdown` op completes its graceful drain. The bound address is
/// announced as `listening on <addr>` (port 0 requests an ephemeral
/// port, so callers need the announcement to find it).
fn serve_network(
    engine: &Engine,
    addr: &str,
    net: &ServeNetOpts,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    writeln!(out, "listening on {local}").ok();
    let metrics_listener = bind_metrics_listener(&net.metrics_listen, out)?;
    out.flush().ok();
    let config = freqywm_net::NetConfig {
        max_conns: net.max_conns.max(1),
        idle_timeout: (net.idle_timeout_secs > 0)
            .then(|| std::time::Duration::from_secs(net.idle_timeout_secs)),
        max_frame: net.max_frame.max(1),
        auth_token: net.auth_token.clone(),
        ..freqywm_net::NetConfig::default()
    };
    freqywm_net::serve_listener_with_metrics(engine, listener, metrics_listener, config)
        .map_err(|e| format!("network serve error: {e}"))
}

/// Binds the optional `--metrics-listen` HTTP scrape address and
/// announces it as `metrics on <addr>` (port 0 works like `--listen`:
/// the announcement is how callers learn the ephemeral port).
fn bind_metrics_listener(
    addr: &Option<String>,
    out: &mut dyn std::io::Write,
) -> Result<Option<std::net::TcpListener>, String> {
    let Some(addr) = addr else { return Ok(None) };
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("cannot listen on metrics address {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound metrics address: {e}"))?;
    writeln!(out, "metrics on {local}").ok();
    Ok(Some(listener))
}

/// Binds the router's listen address, announces it and the shard map,
/// and runs the router reactor until a `shutdown` op drains the tier
/// (or SIGTERM/SIGINT drains the router alone).
fn run_router(
    listen: &str,
    shards: Vec<String>,
    standbys: Vec<Option<String>>,
    opts: &RouterOpts,
    out: &mut dyn std::io::Write,
) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    writeln!(out, "listening on {local}").ok();
    // The shard map is the deployment contract — log it so operators
    // can verify placement against each backend's --shard-id.
    write!(
        out,
        "{}",
        freqywm_shard::ShardMap::new(shards.clone()).describe()
    )
    .ok();
    for (i, standby) in standbys.iter().enumerate() {
        if let Some(addr) = standby {
            writeln!(out, "shard {i} standby -> {addr}").ok();
        }
    }
    let metrics_listener = bind_metrics_listener(&opts.metrics_listen, out)?;
    out.flush().ok();
    let config = freqywm_shard::RouterConfig {
        max_conns: opts.max_conns.max(1),
        max_frame: opts.max_frame.max(1),
        probe_interval: std::time::Duration::from_secs(opts.probe_interval_secs.max(1)),
        drain_timeout: std::time::Duration::from_secs(opts.drain_timeout_secs.max(1)),
        failover_timeout: std::time::Duration::from_secs(opts.failover_timeout_secs.max(1)),
        auth_token: opts.auth_token.clone(),
        shard_auth_token: opts.shard_auth_token.clone(),
        handle_signals: true,
        standbys,
        ..freqywm_shard::RouterConfig::new(shards)
    };
    freqywm_shard::run_router_with_metrics(listener, metrics_listener, config)
        .map_err(|e| format!("router error: {e}"))
}

/// One-shot protocol client for `freqywm trace`/`metrics`/`top`:
/// connects, sends the request line, returns the single response line.
pub(crate) fn one_shot_request(addr: &str, request: &str) -> Result<String, String> {
    use std::io::{BufRead, BufReader, Write as _};
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone connection: {e}"))?;
    writeln!(writer, "{request}").map_err(|e| format!("cannot send request: {e}"))?;
    writer.flush().ok();
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if line.trim().is_empty() {
        return Err(format!("{addr} closed the connection without answering"));
    }
    Ok(line.trim_end().to_string())
}

/// Minimal HTTP scrape client for `freqywm metrics --prom`: one
/// request, read to EOF (the endpoint is `Connection: close`).
/// Returns `(status_line, body)`.
fn http_scrape(addr: &str) -> Result<(String, String), String> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    stream
        .write_all(format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("cannot send scrape request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("cannot read scrape response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr} sent a malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or_default().to_string();
    Ok((status, body.to_string()))
}

/// Runs a parsed command. Returns the process exit code.
pub fn run(cmd: Command, out: &mut dyn std::io::Write) -> i32 {
    match run_inner(cmd, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

fn read_tokens(path: &str) -> Result<Dataset, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let tokens: Vec<Token> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Token::new(l.trim().to_string()))
        .collect();
    if tokens.is_empty() {
        return Err(format!("{path} contains no tokens"));
    }
    Ok(Dataset::new(tokens))
}

fn write_tokens(path: &str, data: &Dataset) -> Result<(), String> {
    let mut text = String::with_capacity(data.len() * 12);
    for t in data.iter() {
        text.push_str(t.as_str());
        text.push('\n');
    }
    fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

fn run_inner(cmd: Command, out: &mut dyn std::io::Write) -> Result<i32, String> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}").ok();
            Ok(0)
        }
        Command::Generate {
            input,
            output,
            secret_out,
            budget,
            z,
            selection,
            exclude_free_pairs,
            secret_label,
        } => {
            let data = read_tokens(&input)?;
            let params = GenerationParams::default()
                .with_budget(budget)
                .with_z(z)
                .with_selection(selection)
                .with_exclude_free_pairs(exclude_free_pairs);
            let secret = match secret_label {
                Some(label) => Secret::from_label(&label),
                None => Secret::generate(&mut rand::rngs::OsRng),
            };
            let (wdata, secrets, report) = Watermarker::new(params)
                .watermark_dataset(&data, secret)
                .map_err(|e| e.to_string())?;
            write_tokens(&output, &wdata)?;
            fs::write(&secret_out, secrets.to_text())
                .map_err(|e| format!("cannot write {secret_out}: {e}"))?;
            writeln!(
                out,
                "watermarked {} tokens -> {output}\n  distinct tokens: {}\n  eligible pairs: {}\n  \
                 matched pairs: {}\n  chosen pairs: {}\n  similarity: {:.6}%\n  instances changed: {}\n  \
                 secrets -> {secret_out}",
                data.len(),
                report.distinct_tokens,
                report.eligible_pairs,
                report.matched_pairs,
                report.chosen_pairs,
                report.similarity_pct,
                report.total_change,
            )
            .ok();
            Ok(0)
        }
        Command::Detect {
            input,
            secret,
            t,
            k,
            scale,
        } => {
            let data = read_tokens(&input)?;
            let text =
                fs::read_to_string(&secret).map_err(|e| format!("cannot read {secret}: {e}"))?;
            let secrets = SecretList::from_text(&text).map_err(|e| e.to_string())?;
            let mut params = DetectionParams::default().with_t(t).with_k(k);
            if let Some(s) = scale {
                params = params.with_scale(s);
            }
            let outcome = detect_dataset(&data, &secrets, &params);
            writeln!(
                out,
                "pairs: {} stored, {} present, {} verified (t={t}, k={k})\nresult: {}",
                outcome.total_pairs,
                outcome.present_pairs,
                outcome.accepted_pairs,
                if outcome.accepted { "ACCEPT" } else { "REJECT" },
            )
            .ok();
            Ok(if outcome.accepted { 0 } else { 1 })
        }
        Command::Inspect { input, z } => {
            let data = read_tokens(&input)?;
            let hist = data.histogram();
            // Capacity probe with a throwaway secret: |Le| depends on
            // the secret only through the s_ij draws, so any secret
            // gives a representative figure.
            let probe = Secret::from_label("freqywm-inspect-probe");
            let eligible = eligible_pairs(&hist, &probe, z);
            let counts = hist.counts();
            writeln!(
                out,
                "tokens: {}\ndistinct: {}\ntop frequency: {}\nbottom frequency: {}\n\
                 r_max: {} (valid z range: 2..{})\neligible pairs at z={z}: {}\n\
                 max watermark pairs (matching bound): {}",
                data.len(),
                hist.len(),
                counts.first().copied().unwrap_or(0),
                counts.last().copied().unwrap_or(0),
                r_max(&hist),
                r_max(&hist),
                eligible.len(),
                hist.len() / 2,
            )
            .ok();
            Ok(0)
        }
        Command::Judge {
            a_input,
            a_secret,
            b_input,
            b_secret,
            t,
            quorum,
        } => {
            if !(0.0..=1.0).contains(&quorum) {
                return Err(format!("quorum must be in [0,1], got {quorum}"));
            }
            let load = |data_path: &str, secret_path: &str| -> Result<Claim, String> {
                let data = read_tokens(data_path)?;
                let text = fs::read_to_string(secret_path)
                    .map_err(|e| format!("cannot read {secret_path}: {e}"))?;
                let secrets = SecretList::from_text(&text).map_err(|e| e.to_string())?;
                Ok(Claim {
                    histogram: data.histogram(),
                    secrets,
                })
            };
            let a = load(&a_input, &a_secret)?;
            let b = load(&b_input, &b_secret)?;
            let k = ((a.secrets.len().min(b.secrets.len()) as f64 * quorum).ceil() as usize).max(1);
            let params = DetectionParams::default().with_t(t).with_k(k);
            let ruling = judge_dispute(&a, &b, &params);
            writeln!(
                out,
                "four-run protocol (t={t}, k={k}):\n  A's secret: on A {}/{}, on B {}/{}\n                   B's secret: on B {}/{}, on A {}/{}\nverdict: {}",
                ruling.a_on_a.accepted_pairs,
                ruling.a_on_a.total_pairs,
                ruling.a_on_b.accepted_pairs,
                ruling.a_on_b.total_pairs,
                ruling.b_on_b.accepted_pairs,
                ruling.b_on_b.total_pairs,
                ruling.b_on_a.accepted_pairs,
                ruling.b_on_a.total_pairs,
                match ruling.verdict {
                    Verdict::FirstParty => "FIRST PARTY (A) is the rightful owner",
                    Verdict::SecondParty => "SECOND PARTY (B) is the rightful owner",
                    Verdict::Inconclusive => "INCONCLUSIVE — consult ledger chronology",
                },
            )
            .ok();
            Ok(0)
        }
        Command::Serve { engine: opts, net } => {
            let engine = std::sync::Arc::new(start_engine(&opts, net.follow.clone())?);
            if let Some(primary) = &net.follow {
                // Announce follower mode before binding so harnesses
                // tailing stdout see the role before the address.
                writeln!(out, "following {primary} (read-only until promoted)").ok();
                out.flush().ok();
                let mut follower = freqywm_service::FollowerConfig::new(primary.clone());
                follower.auth_token = net.follow_token.clone();
                freqywm_service::spawn_follower(engine.clone(), follower);
            }
            match &net.listen {
                Some(addr) => serve_network(&engine, addr, &net, out)?,
                None => {
                    // stdin/stdout pipe: pipelined through the same
                    // Session machinery as the socket path; EOF takes
                    // the graceful-drain route (in-flight responses
                    // flush before exit).
                    proto::serve_with_auth(
                        &engine,
                        std::io::BufReader::new(std::io::stdin()),
                        &mut *out,
                        net.max_frame.max(1),
                        net.auth_token.clone(),
                    )
                    .map_err(|e| format!("serve I/O error: {e}"))?;
                }
            }
            stop_engine(&engine, opts.data_dir.is_some());
            Ok(0)
        }
        Command::Router {
            listen,
            shards,
            standbys,
            opts,
        } => {
            run_router(&listen, shards, standbys, &opts, out)?;
            Ok(0)
        }
        Command::Batch {
            input,
            engine: opts,
        } => {
            let text =
                fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
            let lines: Vec<String> = text.lines().map(str::to_string).collect();
            let engine = start_engine(&opts, None)?;
            let responses = proto::run_batch(&engine, &lines);
            let failed = responses
                .iter()
                .filter(|r| r.starts_with("{\"ok\":false"))
                .count();
            for r in &responses {
                writeln!(out, "{r}").ok();
            }
            stop_engine(&engine, opts.data_dir.is_some());
            Ok(if failed == 0 { 0 } else { 1 })
        }
        Command::Metrics {
            connect,
            prom,
            check,
            auth,
        } => {
            if prom {
                let (status, body) = http_scrape(&connect)?;
                if !status.contains("200") {
                    return Err(format!("scrape of {connect} failed: {status}"));
                }
                write!(out, "{body}").ok();
                if check {
                    // A comment line keeps the output a valid
                    // exposition for anything piping it onward.
                    let families = freqywm_obs::prom::parse_exposition(&body)
                        .map_err(|e| format!("exposition invalid: {e}"))?;
                    let samples: usize = families.iter().map(|f| f.samples.len()).sum();
                    writeln!(
                        out,
                        "# exposition OK: {} families, {samples} samples",
                        families.len()
                    )
                    .ok();
                }
                Ok(0)
            } else {
                use freqywm_service::proto::json;
                let req = match &auth {
                    Some(token) => {
                        format!(
                            "{{\"op\":\"metrics\",\"auth\":\"{}\"}}",
                            json::escape(token)
                        )
                    }
                    None => "{\"op\":\"metrics\"}".to_string(),
                };
                let response = one_shot_request(&connect, &req)?;
                writeln!(out, "{response}").ok();
                Ok(if response.starts_with("{\"ok\":true") {
                    0
                } else {
                    1
                })
            }
        }
        Command::Top {
            connect,
            interval_ms,
            once,
            auth,
        } => crate::top::run_top(&connect, interval_ms, once, auth.as_deref(), out),
        Command::Quota {
            connect,
            tenant,
            embed,
            detect,
            maintain,
            window_ms,
            auth,
        } => {
            use freqywm_service::proto::json;
            let mut req = format!(
                "{{\"op\":\"quota\",\"tenant\":\"{}\"",
                json::escape(&tenant)
            );
            for (key, value) in [
                ("embed", embed),
                ("detect", detect),
                ("maintain", maintain),
                ("window_ms", window_ms),
            ] {
                if let Some(n) = value {
                    req.push_str(&format!(",\"{key}\":{n}"));
                }
            }
            if let Some(token) = &auth {
                req.push_str(&format!(",\"auth\":\"{}\"", json::escape(token)));
            }
            req.push('}');
            let response = one_shot_request(&connect, &req)?;
            writeln!(out, "{response}").ok();
            Ok(if response.starts_with("{\"ok\":true") {
                0
            } else {
                1
            })
        }
        Command::Trace {
            connect,
            trace,
            tenant,
            for_op,
            min_ms,
            limit,
            auth,
        } => {
            use freqywm_service::proto::json;
            let mut req = String::from("{\"op\":\"trace\"");
            for (key, value) in [
                ("trace", &trace),
                ("tenant", &tenant),
                ("for_op", &for_op),
                ("auth", &auth),
            ] {
                if let Some(v) = value {
                    req.push_str(&format!(",\"{key}\":\"{}\"", json::escape(v)));
                }
            }
            if let Some(ms) = min_ms {
                req.push_str(&format!(",\"min_ms\":{ms}"));
            }
            if let Some(n) = limit {
                req.push_str(&format!(",\"limit\":{n}"));
            }
            req.push('}');
            let response = one_shot_request(&connect, &req)?;
            writeln!(out, "{response}").ok();
            Ok(if response.starts_with("{\"ok\":true") {
                0
            } else {
                1
            })
        }
        Command::LedgerVerify {
            data_dir,
            ledger_key,
        } => {
            // Read-only recovery: snapshot + log replay re-proves the
            // whole hash chain without touching the data-dir.
            let key = ledger_key_bytes(&ledger_key);
            let storage = DiskLog::open_read_only(&data_dir)
                .map_err(|e| format!("cannot open data-dir {data_dir}: {e}"))?;
            let mut outcome = DurableRegistry::open_read_only(&key, Box::new(storage));
            if outcome.is_err() {
                // A live serve process compacting between our snapshot
                // and log reads can cause a transient mismatch; retry
                // once on a fresh read before trusting the verdict.
                if let Ok(storage) = DiskLog::open_read_only(&data_dir) {
                    outcome = DurableRegistry::open_read_only(&key, Box::new(storage));
                }
            }
            match outcome {
                Ok(registry) => {
                    let report = registry.recovery_report();
                    writeln!(
                        out,
                        "ledger OK\n  entries: {}\n  head: {}\n  tenants: {}\n  \
                         snapshot restored: {}\n  replayed events: {}\n  \
                         torn tail bytes dropped: {}",
                        registry.ledger().len(),
                        hex::encode(&registry.ledger().head_hash()),
                        registry.len(),
                        report.snapshot_restored,
                        report.replayed_events,
                        report.torn_tail_bytes,
                    )
                    .ok();
                    Ok(0)
                }
                Err(e) => {
                    writeln!(out, "ledger verification FAILED: {e}").ok();
                    Ok(1)
                }
            }
        }
        Command::Attack {
            input,
            output,
            kind,
            param,
            seed,
            ..
        } => {
            let data = read_tokens(&input)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let attacked: Dataset = match kind {
                AttackKind::Sample => {
                    if !(param > 0.0 && param <= 1.0) {
                        return Err(format!("sample fraction must be in (0,1], got {param}"));
                    }
                    data.sample(param, &mut rng)
                }
                AttackKind::Destroy | AttackKind::Reorder => {
                    let hist = data.histogram();
                    let target = match kind {
                        AttackKind::Destroy => destroy_within_boundaries(&hist, &mut rng),
                        _ => destroy_with_reordering(&hist, param, &mut rng),
                    };
                    // Materialise the attacked histogram as a token list.
                    let mut d = data.clone();
                    for (token, want) in target.entries() {
                        let have = hist.count(token).unwrap_or(0);
                        match want.cmp(&have) {
                            std::cmp::Ordering::Greater => {
                                d.insert_instances(token, want - have, &mut rng)
                            }
                            std::cmp::Ordering::Less => {
                                d.remove_instances(token, have - want, &mut rng)
                            }
                            std::cmp::Ordering::Equal => {}
                        }
                    }
                    d
                }
            };
            write_tokens(&output, &attacked)?;
            writeln!(
                out,
                "attacked dataset: {} tokens -> {output}",
                attacked.len()
            )
            .ok();
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;
    use std::path::PathBuf;

    fn tmp(name: &str) -> String {
        let mut p: PathBuf = std::env::temp_dir();
        p.push(format!("freqywm-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn sample_file() -> String {
        let path = tmp("input.txt");
        // Heavy-tailed token file with plenty of variation.
        let mut text = String::new();
        for i in 0..60u64 {
            let reps = 2_000u64 / (i + 1);
            for _ in 0..reps {
                text.push_str(&format!("token-{i:02}\n"));
            }
        }
        fs::write(&path, text).unwrap();
        path
    }

    fn run_line(line: &[&str]) -> (i32, String) {
        let args: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        let cmd = parse_args(&args).expect("parse");
        let mut buf = Vec::new();
        let code = run(cmd, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn generate_detect_round_trip() {
        let input = sample_file();
        let output = tmp("wm.txt");
        let secret = tmp("secret.fwm");
        // Free-pair exclusion so the original file cannot coincidentally
        // carry the full watermark.
        let (code, log) = run_line(&[
            "generate",
            "--input",
            &input,
            "--output",
            &output,
            "--secret-out",
            &secret,
            "--z",
            "19",
            "--secret-label",
            "cli-test",
            "--exclude-free-pairs",
        ]);
        assert_eq!(code, 0, "{log}");
        assert!(log.contains("chosen pairs"));

        let (code, log) = run_line(&["detect", "--input", &output, "--secret", &secret]);
        assert_eq!(code, 0, "{log}");
        assert!(log.contains("ACCEPT"));

        // The original file must NOT verify fully: demand every pair.
        let stored = SecretList::from_text(&fs::read_to_string(&secret).unwrap()).unwrap();
        let (code, _) = run_line(&[
            "detect",
            "--input",
            &input,
            "--secret",
            &secret,
            "--k",
            &stored.len().to_string(),
        ]);
        assert_eq!(code, 1, "original data should fail strict detection");
    }

    #[test]
    fn inspect_reports_capacity() {
        let input = sample_file();
        let (code, log) = run_line(&["inspect", "--input", &input, "--z", "19"]);
        assert_eq!(code, 0);
        assert!(log.contains("distinct: 60"), "{log}");
        assert!(log.contains("eligible pairs"), "{log}");
    }

    #[test]
    fn attack_sample_and_detect_with_scale() {
        let input = sample_file();
        let output = tmp("wm2.txt");
        let secret = tmp("secret2.fwm");
        let attacked = tmp("attacked.txt");
        run_line(&[
            "generate",
            "--input",
            &input,
            "--output",
            &output,
            "--secret-out",
            &secret,
            "--z",
            "19",
            "--secret-label",
            "cli-test-2",
        ]);
        let (code, _) = run_line(&[
            "attack", "--input", &output, "--output", &attacked, "--kind", "sample", "--param",
            "0.5", "--seed", "3",
        ]);
        assert_eq!(code, 0);
        let (code, log) = run_line(&[
            "detect", "--input", &attacked, "--secret", &secret, "--t", "6", "--scale", "2.0",
        ]);
        assert_eq!(code, 0, "{log}");
    }

    #[test]
    fn judge_resolves_rewatermark_dispute() {
        let input = sample_file();
        let owner_out = tmp("owner.txt");
        let owner_secret = tmp("owner.fwm");
        run_line(&[
            "generate",
            "--input",
            &input,
            "--output",
            &owner_out,
            "--secret-out",
            &owner_secret,
            "--z",
            "19",
            "--secret-label",
            "cli-owner",
            "--exclude-free-pairs",
        ]);
        // Pirate re-watermarks the owner's output.
        let pirate_out = tmp("pirate.txt");
        let pirate_secret = tmp("pirate.fwm");
        run_line(&[
            "generate",
            "--input",
            &owner_out,
            "--output",
            &pirate_out,
            "--secret-out",
            &pirate_secret,
            "--z",
            "19",
            "--secret-label",
            "cli-pirate",
            "--exclude-free-pairs",
        ]);
        let (code, log) = run_line(&[
            "judge",
            "--a-input",
            &owner_out,
            "--a-secret",
            &owner_secret,
            "--b-input",
            &pirate_out,
            "--b-secret",
            &pirate_secret,
            "--quorum",
            "0.25",
        ]);
        assert_eq!(code, 0, "{log}");
        assert!(log.contains("FIRST PARTY"), "{log}");
    }

    #[test]
    fn batch_runs_service_requests() {
        let reqs = tmp("requests.jsonl");
        // Power-law counts inline; register → embed → detect the
        // original (partial) — all through the service engine.
        let counts: Vec<String> = (0..60u64)
            .map(|i| format!("[\"token-{i:02}\",{}]", 2_000 / (i + 1)))
            .collect();
        let counts = format!("[{}]", counts.join(","));
        let text = format!(
            concat!(
                "{{\"op\":\"register\",\"tenant\":\"cli\",\"secret_label\":\"cli-batch\"}}\n",
                "{{\"op\":\"embed\",\"tenant\":\"cli\",\"z\":19,\"counts\":{c}}}\n",
                "{{\"op\":\"detect\",\"tenant\":\"cli\",\"t\":2,\"k\":1,\"counts\":{c}}}\n",
                "{{\"op\":\"metrics\"}}\n",
            ),
            c = counts
        );
        fs::write(&reqs, text).unwrap();
        let (code, log) = run_line(&["batch", "--input", &reqs, "--workers", "2"]);
        assert_eq!(code, 0, "{log}");
        let lines: Vec<&str> = log.trim().lines().collect();
        assert_eq!(lines.len(), 4, "{log}");
        assert!(lines[0].contains("ledger_index"), "{log}");
        assert!(lines[1].contains("chosen_pairs"), "{log}");
        assert!(lines[2].contains("\"op\":\"detect\""), "{log}");
        assert!(lines[3].contains("\"completed\":2"), "{log}");
    }

    #[test]
    fn batch_reports_malformed_json_line_and_exits_nonzero() {
        let reqs = tmp("malformed.jsonl");
        fs::write(
            &reqs,
            "{\"op\":\"metrics\"}\n# comment\nthis is not json\n{\"op\":\"metrics\"}\n",
        )
        .unwrap();
        let (code, log) = run_line(&["batch", "--input", &reqs]);
        assert_eq!(code, 1, "{log}");
        assert!(log.contains("line 3"), "{log}");
        assert!(log.contains("bad json"), "{log}");
    }

    #[test]
    fn durable_data_dir_survives_torn_restart_and_verifies() {
        let dir = tmp("data-dir");
        let _ = fs::remove_dir_all(&dir);
        let reqs = tmp("durable-requests.jsonl");
        let counts: Vec<String> = (0..60u64)
            .map(|i| format!("[\"token-{i:02}\",{}]", 2_000 / (i + 1)))
            .collect();
        let counts = format!("[{}]", counts.join(","));
        fs::write(
            &reqs,
            format!(
                concat!(
                    "{{\"op\":\"register\",\"tenant\":\"dur\",\"secret_label\":\"cli-durable\"}}\n",
                    "{{\"op\":\"embed\",\"tenant\":\"dur\",\"z\":19,\"counts\":{c}}}\n",
                ),
                c = counts
            ),
        )
        .unwrap();
        let (code, log) = run_line(&["batch", "--input", &reqs, "--data-dir", &dir]);
        assert_eq!(code, 0, "{log}");

        // A crash mid-append leaves a torn record at the log tail.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(format!("{dir}/registry.log"))
            .unwrap();
        f.write_all(&[0, 0, 0, 99, 1, 2, 3]).unwrap();
        drop(f);

        // Verification recovers, drops the torn tail, re-proves the chain.
        let (code, log) = run_line(&["ledger", "verify", "--data-dir", &dir]);
        assert_eq!(code, 0, "{log}");
        assert!(log.contains("ledger OK"), "{log}");
        assert!(log.contains("torn tail bytes dropped: 7"), "{log}");
        assert!(log.contains("tenants: 1"), "{log}");

        // The recovered tenant serves detect traffic without re-registering.
        let reqs2 = tmp("durable-requests-2.jsonl");
        fs::write(
            &reqs2,
            format!(
                "{{\"op\":\"detect\",\"tenant\":\"dur\",\"t\":2,\"k\":1,\"counts\":{counts}}}\n"
            ),
        )
        .unwrap();
        let (code, log) = run_line(&["batch", "--input", &reqs2, "--data-dir", &dir]);
        assert_eq!(code, 0, "{log}");
        assert!(!log.contains("unknown tenant"), "{log}");

        // A wrong key must fail verification: the chain cannot re-prove.
        let (code, log) = run_line(&[
            "ledger",
            "verify",
            "--data-dir",
            &dir,
            "--ledger-key",
            "imposter",
        ]);
        assert_eq!(code, 1, "{log}");
        assert!(log.contains("FAILED"), "{log}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_enforces_quota_budgets() {
        let reqs = tmp("quota-requests.jsonl");
        let counts: Vec<String> = (0..60u64)
            .map(|i| format!("[\"token-{i:02}\",{}]", 2_000 / (i + 1)))
            .collect();
        let counts = format!("[{}]", counts.join(","));
        // The default engine budget (--quota-embed 1) admits the first
        // embed; the live `quota` op raises it so the third passes too.
        fs::write(
            &reqs,
            format!(
                concat!(
                    "{{\"op\":\"register\",\"tenant\":\"q\",\"secret_label\":\"cli-quota\"}}\n",
                    "{{\"op\":\"embed\",\"tenant\":\"q\",\"z\":19,\"counts\":{c}}}\n",
                    "{{\"op\":\"embed\",\"tenant\":\"q\",\"z\":19,\"counts\":{c}}}\n",
                    "{{\"op\":\"quota\",\"tenant\":\"q\",\"embed\":100}}\n",
                    "{{\"op\":\"embed\",\"tenant\":\"q\",\"z\":19,\"counts\":{c}}}\n",
                ),
                c = counts
            ),
        )
        .unwrap();
        let (code, log) = run_line(&["batch", "--input", &reqs, "--quota-embed", "1"]);
        // One refused request → nonzero, like any failed batch line.
        assert_eq!(code, 1, "{log}");
        let lines: Vec<&str> = log.trim().lines().collect();
        assert_eq!(lines.len(), 5, "{log}");
        assert!(lines[1].contains("\"ok\":true"), "{log}");
        assert!(lines[2].contains("quota_exhausted"), "{log}");
        assert!(lines[2].contains("retry_after_ms"), "{log}");
        assert!(lines[3].contains("\"op\":\"quota\""), "{log}");
        assert!(lines[4].contains("\"ok\":true"), "{log}");
    }

    #[test]
    fn batch_with_unknown_tenant_fails_nonzero() {
        let reqs = tmp("bad-requests.jsonl");
        fs::write(
            &reqs,
            "{\"op\":\"detect\",\"tenant\":\"ghost\",\"counts\":[[\"a\",1]]}\n",
        )
        .unwrap();
        let (code, log) = run_line(&["batch", "--input", &reqs]);
        assert_eq!(code, 1, "{log}");
        assert!(log.contains("unknown tenant"), "{log}");
    }

    #[test]
    fn missing_file_is_error() {
        let (code, log) = run_line(&[
            "detect",
            "--input",
            "/nonexistent/tokens.txt",
            "--secret",
            "/nonexistent/s",
        ]);
        assert_eq!(code, 2);
        assert!(log.contains("error"));
    }

    #[test]
    fn help_prints_usage() {
        let (code, log) = run_line(&["help"]);
        assert_eq!(code, 0);
        assert!(log.contains("USAGE"));
    }
}
