//! `freqywm top` — a refreshing terminal dashboard over the `metrics`
//! and `history` protocol ops.
//!
//! Works against a single `serve --listen` engine (one row) or a
//! `router` tier (one row per shard, fed by the router's fanned-out
//! `metrics` shard map and per-shard `history` series). Rates (qps,
//! cache hit rate, queue-wait share) come from the engines' retained
//! snapshot rings — `{"op":"history","last":2}` windows over the two
//! newest samples, so consecutive frames move with live traffic.
//!
//! `--once` prints a single frame with no ANSI escapes, for scripts
//! and tests; otherwise each frame home-clears the terminal
//! (`ESC[H ESC[2J`) and redraws every `--interval-ms`.

use crate::commands::one_shot_request;
use freqywm_service::proto::json::{self, Value};
use std::collections::HashMap;
use std::io::Write;

pub fn run_top(
    connect: &str,
    interval_ms: u64,
    once: bool,
    auth: Option<&str>,
    out: &mut dyn Write,
) -> Result<i32, String> {
    let auth_part = auth
        .map(|t| format!(",\"auth\":\"{}\"", json::escape(t)))
        .unwrap_or_default();
    let metrics_req = format!("{{\"op\":\"metrics\"{auth_part}}}");
    let history_req = format!("{{\"op\":\"history\",\"last\":2{auth_part}}}");
    let mut frame = 0u64;
    let mut failures = 0u32;
    loop {
        frame += 1;
        match fetch_frame(connect, &metrics_req, &history_req, frame) {
            Ok(text) => {
                failures = 0;
                if !once {
                    write!(out, "\x1b[H\x1b[2J").ok();
                }
                write!(out, "{text}").ok();
            }
            Err(e) if once => return Err(e),
            Err(e) => {
                // A restarting router/engine should not kill the
                // dashboard; give transient failures a few frames.
                failures += 1;
                if failures >= 10 {
                    return Err(format!("{e} (10 consecutive failures)"));
                }
                writeln!(out, "freqywm top: {e} (retrying)").ok();
            }
        }
        out.flush().ok();
        if once {
            return Ok(0);
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

/// Fetches `metrics` + `history` and renders one complete frame.
fn fetch_frame(
    connect: &str,
    metrics_req: &str,
    history_req: &str,
    frame: u64,
) -> Result<String, String> {
    let metrics = parse_ok(&one_shot_request(connect, metrics_req)?, "metrics")?;
    let history = parse_ok(&one_shot_request(connect, history_req)?, "history")?;
    let mut text = format!("freqywm top — {connect} — frame {frame}\n");
    if metrics.get("shard_map").is_some() {
        render_router(&mut text, &metrics, &history);
    } else {
        render_single(&mut text, connect, &metrics, &history);
    }
    render_tenants(&mut text, &metrics);
    Ok(text)
}

fn parse_ok(line: &str, op: &str) -> Result<Value, String> {
    let v = json::parse(line).map_err(|e| format!("bad {op} response: {e}"))?;
    if v.get("ok").and_then(Value::as_bool) != Some(true) {
        let err = v
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("unknown error");
        return Err(format!("{op} op refused: {err}"));
    }
    Ok(v)
}

const ROW_HEADER: &str = " shard  role      health    qps  refus/s    p50_us    p99_us   wait%    hit%    log_seq    lag   addr";

#[allow(clippy::too_many_arguments)]
fn push_row(
    text: &mut String,
    shard: &str,
    role: &str,
    health: &str,
    qps: Option<f64>,
    refused_per_s: Option<f64>,
    p50: Option<u64>,
    p99: Option<u64>,
    wait_share: Option<f64>,
    hit_rate: Option<f64>,
    log_seq: Option<u64>,
    lag: Option<u64>,
    addr: &str,
) {
    text.push_str(&format!(
        "{:>6}  {:<8}  {:<6}{:>7}  {:>7}  {:>8}  {:>8}  {:>6}  {:>6}  {:>9}  {:>5}   {}\n",
        shard,
        role,
        health,
        fmt_f(qps, 1),
        fmt_f(refused_per_s, 1),
        fmt_u(p50),
        fmt_u(p99),
        fmt_f(wait_share.map(|s| s * 100.0), 1),
        fmt_f(hit_rate.map(|s| s * 100.0), 1),
        fmt_u(log_seq),
        fmt_u(lag),
        addr,
    ));
}

fn fmt_f(v: Option<f64>, prec: usize) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.prec$}"))
}

fn fmt_u(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// Router tier: header totals plus one row per shard, joining the
/// `metrics` shard map, the merged per-shard engine metrics, and the
/// per-shard `history` series (matched on `shard_index`).
fn render_router(text: &mut String, metrics: &Value, history: &Value) {
    let empty: Vec<Value> = Vec::new();
    let shard_map = metrics
        .get("shard_map")
        .and_then(Value::as_arr)
        .unwrap_or(&empty);
    // Per-shard engine metrics objects, by shard index.
    let mut engines: HashMap<u64, &Value> = HashMap::new();
    if let Some(per_shard) = metrics
        .get("metrics")
        .and_then(|m| m.get("per_shard"))
        .and_then(Value::as_arr)
    {
        for p in per_shard {
            if let (Some(i), Some(m)) = (get_u64(p, "shard"), p.get("metrics")) {
                engines.insert(i, m);
            }
        }
    }
    // Per-shard history rates, by shard index.
    let mut series: HashMap<u64, &Value> = HashMap::new();
    if let Some(arr) = history.get("series").and_then(Value::as_arr) {
        for s in arr {
            if let Some(i) = get_u64(s, "shard_index") {
                series.insert(i, s);
            }
        }
    }

    let up = shard_map
        .iter()
        .filter(|s| s.get("up").and_then(Value::as_bool) == Some(true))
        .count();
    let qps_total: f64 = series
        .values()
        .filter_map(|s| s.get("rates").and_then(|r| get_f64(r, "completed_per_s")))
        .sum();
    let totals = metrics.get("metrics").and_then(|m| m.get("totals"));
    let router = metrics.get("router");
    text.push_str(&format!(
        "tier: {} shards ({} up) · qps {:.1} · completed {} · failed {} · clients {} · inflight_failed {}{}\n\n",
        shard_map.len(),
        up,
        qps_total,
        fmt_u(totals.and_then(|t| get_u64(t, "completed"))),
        fmt_u(totals.and_then(|t| get_u64(t, "failed"))),
        fmt_u(router.and_then(|r| get_u64(r, "clients_active"))),
        fmt_u(router.and_then(|r| get_u64(r, "inflight_failed"))),
        if router.and_then(|r| r.get("draining").and_then(Value::as_bool)) == Some(true) {
            " · DRAINING"
        } else {
            ""
        },
    ));
    text.push_str(ROW_HEADER);
    text.push('\n');
    for s in shard_map {
        let idx = get_u64(s, "shard").unwrap_or(0);
        let up = s.get("up").and_then(Value::as_bool) == Some(true);
        let healthy = s.get("healthy").and_then(Value::as_bool) == Some(true);
        let failed_over = s.get("failed_over").and_then(Value::as_bool) == Some(true);
        let health = match (up, healthy, failed_over) {
            (false, _, _) => "down",
            (true, false, _) => "susp",
            (true, true, true) => "ok+fo",
            (true, true, false) => "ok",
        };
        let engine = engines.get(&idx);
        let rates = series.get(&idx).and_then(|s| s.get("rates"));
        let lat = engine.and_then(|m| m.get("latency"));
        push_row(
            text,
            &idx.to_string(),
            s.get("role").and_then(Value::as_str).unwrap_or("?"),
            health,
            rates.and_then(|r| get_f64(r, "completed_per_s")),
            rates.and_then(|r| get_f64(r, "quota_refused_per_s")),
            lat.and_then(|l| get_u64(l, "p50_us")),
            lat.and_then(|l| get_u64(l, "p99_us")),
            rates.and_then(|r| get_f64(r, "queue_wait_share")),
            rates.and_then(|r| get_f64(r, "cache_hit_rate")),
            get_u64(s, "log_seq"),
            get_u64(s, "repl_lag"),
            s.get("addr").and_then(Value::as_str).unwrap_or("?"),
        );
    }
}

/// Single engine: one totals line and one row, rates from the
/// engine's own `history` response.
fn render_single(text: &mut String, connect: &str, metrics: &Value, history: &Value) {
    let Some(m) = metrics.get("metrics") else {
        text.push_str("(metrics response carried no metrics object)\n");
        return;
    };
    let rates = history.get("rates");
    text.push_str(&format!(
        "engine: uptime {}s · qps {} · completed {} · failed {} · queue_depth {} · tenants {}\n\n",
        fmt_u(get_u64(m, "uptime_s")),
        fmt_f(rates.and_then(|r| get_f64(r, "completed_per_s")), 1),
        fmt_u(get_u64(m, "completed")),
        fmt_u(get_u64(m, "failed")),
        fmt_u(get_u64(m, "queue_depth")),
        fmt_u(get_u64(m, "tenants")),
    ));
    text.push_str(ROW_HEADER);
    text.push('\n');
    let lat = m.get("latency");
    push_row(
        text,
        m.get("shard").and_then(Value::as_str).unwrap_or("0"),
        m.get("role").and_then(Value::as_str).unwrap_or("single"),
        "ok",
        rates.and_then(|r| get_f64(r, "completed_per_s")),
        rates.and_then(|r| get_f64(r, "quota_refused_per_s")),
        lat.and_then(|l| get_u64(l, "p50_us")),
        lat.and_then(|l| get_u64(l, "p99_us")),
        rates.and_then(|r| get_f64(r, "queue_wait_share")),
        rates.and_then(|r| get_f64(r, "cache_hit_rate")),
        get_u64(m, "log_seq"),
        None,
        connect,
    );
}

/// Top-tenants-by-ops panel: per-tenant completed op counts plus
/// quota-refused counts, summed across shards when scraping a router.
/// A tenant with a climbing refused column and a flat ops column is
/// starving on its budget — the signal `docs/quotas.md` keys its
/// runbook on.
fn render_tenants(text: &mut String, metrics: &Value) {
    let mut acc: Vec<(String, u64, u64)> = Vec::new();
    let Some(m) = metrics.get("metrics") else {
        return;
    };
    match m.get("per_shard").and_then(Value::as_arr) {
        Some(per_shard) => {
            for p in per_shard {
                if let Some(sm) = p.get("metrics") {
                    accumulate_tenants(sm, &mut acc);
                }
            }
        }
        None => accumulate_tenants(m, &mut acc),
    }
    if acc.is_empty() {
        return;
    }
    acc.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    text.push_str(&format!(
        "\ntop tenants by ops:\n  {:<24} {:>8} {:>8}\n",
        "tenant", "ops", "refused"
    ));
    for (tenant, ops, refused) in acc.iter().take(8) {
        text.push_str(&format!("  {tenant:<24} {ops:>8} {refused:>8}\n"));
    }
}

fn accumulate_tenants(m: &Value, acc: &mut Vec<(String, u64, u64)>) {
    if let Some(Value::Obj(rows)) = m.get("per_tenant") {
        for (tenant, row) in rows {
            let ops: u64 = ["embed", "detect", "maintain"]
                .iter()
                .filter_map(|k| get_u64(row, k))
                .sum();
            let refused = get_u64(row, "quota_refused").unwrap_or(0);
            match acc.iter_mut().find(|(t, ..)| t == tenant) {
                Some((_, o, r)) => {
                    *o += ops;
                    *r += refused;
                }
                None => acc.push((tenant.clone(), ops, refused)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROUTER_METRICS: &str = concat!(
        "{\"ok\":true,\"op\":\"metrics\",\"scheme\":\"jump\",",
        "\"router\":{\"clients_accepted\":4,\"clients_active\":1,\"forwarded\":9,",
        "\"refused\":0,\"inflight_failed\":2,\"draining\":false},",
        "\"shard_map\":[",
        "{\"shard\":0,\"addr\":\"127.0.0.1:7701\",\"up\":true,\"healthy\":true,",
        "\"standby\":\"127.0.0.1:7703\",\"promoting\":false,\"failed_over\":false,",
        "\"role\":\"primary\",\"log_seq\":42,\"standby_log_seq\":40,\"repl_lag\":2,",
        "\"routed\":5,\"latency\":{\"count\":5,\"mean_us\":900,\"p50_us\":800,\"p99_us\":2000}},",
        "{\"shard\":1,\"addr\":\"127.0.0.1:7702\",\"up\":false,\"healthy\":false,",
        "\"standby\":null,\"promoting\":false,\"failed_over\":true,",
        "\"role\":null,\"log_seq\":null,\"standby_log_seq\":null,\"repl_lag\":null,",
        "\"routed\":4,\"latency\":{\"count\":0,\"mean_us\":0,\"p50_us\":0,\"p99_us\":0}}],",
        "\"metrics\":{\"shard_count\":2,\"shards_up\":1,",
        "\"totals\":{\"completed\":9,\"failed\":0},",
        "\"per_shard\":[{\"shard\":0,\"addr\":\"127.0.0.1:7701\",\"up\":true,",
        "\"metrics\":{\"latency\":{\"p50_us\":640,\"p99_us\":1700},",
        "\"per_tenant\":{\"acme\":{\"embed\":2,\"detect\":3,\"maintain\":0,",
        "\"rejected\":0,\"quota_refused\":4},",
        "\"globex\":{\"embed\":1,\"detect\":0,\"maintain\":0,\"rejected\":0}}}},",
        "{\"shard\":1,\"addr\":\"127.0.0.1:7702\",\"up\":false,\"metrics\":null}]}}",
    );

    const ROUTER_HISTORY: &str = concat!(
        "{\"ok\":true,\"op\":\"history\",\"router\":true,\"series\":[",
        "{\"shard_index\":0,\"retain\":{\"capacity\":240,\"interval_ms\":1000},",
        "\"count\":2,\"rates\":{\"window_s\":1.0,\"completed_per_s\":6.5,",
        "\"quota_refused_per_s\":1.5,",
        "\"cache_hit_rate\":0.9,\"queue_wait_share\":0.05}}]}",
    );

    #[test]
    fn router_frame_renders_rows_and_totals() {
        let metrics = json::parse(ROUTER_METRICS).unwrap();
        let history = json::parse(ROUTER_HISTORY).unwrap();
        let mut text = String::new();
        render_router(&mut text, &metrics, &history);
        render_tenants(&mut text, &metrics);
        assert!(text.contains("tier: 2 shards (1 up) · qps 6.5"), "{text}");
        assert!(text.contains("inflight_failed 2"), "{text}");
        // Shard 0: role, engine-side latency, lag, history rates.
        let row0 = text
            .lines()
            .find(|l| l.contains("127.0.0.1:7701"))
            .expect("shard 0 row");
        for needle in [
            "primary", "ok", "6.5", "1.5", "640", "1700", "5.0", "90.0", "42", "2",
        ] {
            assert!(row0.contains(needle), "{needle:?} missing from {row0:?}");
        }
        // Shard 1 is down with no data: dashes, not zeros.
        let row1 = text
            .lines()
            .find(|l| l.contains("127.0.0.1:7702"))
            .expect("shard 1 row");
        assert!(row1.contains("down"), "{row1}");
        assert!(row1.contains('-'), "{row1}");
        // Tenants merge across shards, ordered by op count, with the
        // quota-refused count alongside.
        let acme_line = text.lines().find(|l| l.contains("acme")).unwrap();
        assert!(acme_line.contains('4'), "{acme_line}");
        let acme = text.lines().position(|l| l.contains("acme")).unwrap();
        let globex = text.lines().position(|l| l.contains("globex")).unwrap();
        assert!(acme < globex, "{text}");
    }

    #[test]
    fn single_engine_frame_renders_one_row() {
        let metrics = json::parse(concat!(
            "{\"ok\":true,\"op\":\"metrics\",\"metrics\":{",
            "\"uptime_s\":12,\"completed\":7,\"failed\":0,\"queue_depth\":0,",
            "\"tenants\":1,\"shard\":\"0/2\",\"role\":\"primary\",\"log_seq\":9,",
            "\"latency\":{\"p50_us\":500,\"p99_us\":1200},",
            "\"per_tenant\":{\"acme\":{\"embed\":1,\"detect\":6,\"maintain\":0}}}}",
        ))
        .unwrap();
        let history = json::parse(concat!(
            "{\"ok\":true,\"op\":\"history\",\"count\":2,\"rates\":{",
            "\"window_s\":1.0,\"completed_per_s\":3.0,\"cache_hit_rate\":1.0,",
            "\"queue_wait_share\":0.0}}",
        ))
        .unwrap();
        let mut text = String::new();
        render_single(&mut text, "127.0.0.1:7700", &metrics, &history);
        render_tenants(&mut text, &metrics);
        assert!(text.contains("engine: uptime 12s · qps 3.0"), "{text}");
        let row = text
            .lines()
            .find(|l| l.contains("127.0.0.1:7700"))
            .expect("engine row");
        for needle in ["0/2", "primary", "3.0", "500", "1200", "100.0", "9"] {
            assert!(row.contains(needle), "{needle:?} missing from {row:?}");
        }
        assert!(text.contains("acme"), "{text}");
    }

    #[test]
    fn refused_op_is_an_error() {
        assert!(parse_ok("{\"ok\":true,\"op\":\"metrics\"}", "metrics").is_ok());
        let err = parse_ok("{\"ok\":false,\"error\":\"auth required\"}", "metrics").unwrap_err();
        assert!(err.contains("auth required"), "{err}");
        assert!(parse_ok("not json", "metrics").is_err());
    }
}
