//! Hand-rolled argument parser (keeps the dependency set whitelisted).

use freqywm_core::params::Selection;
use std::collections::HashMap;

/// Parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Generate {
        input: String,
        output: String,
        secret_out: String,
        budget: f64,
        z: u64,
        selection: Selection,
        exclude_free_pairs: bool,
        /// Optional deterministic secret label (testing only).
        secret_label: Option<String>,
    },
    Detect {
        input: String,
        secret: String,
        t: u64,
        k: usize,
        scale: Option<f64>,
    },
    Inspect {
        input: String,
        z: u64,
    },
    Attack {
        input: String,
        output: String,
        kind: AttackKind,
        /// Sample fraction (0–1] or noise percentage, per kind.
        param: f64,
        seed: u64,
    },
    /// Arbitrates an ownership dispute between two (data, secret) claims.
    Judge {
        a_input: String,
        a_secret: String,
        b_input: String,
        b_secret: String,
        t: u64,
        /// Quorum as a fraction of each claimant's pair count.
        quorum: f64,
    },
    /// Runs the multi-tenant engine over JSON-lines — on stdin/stdout,
    /// or over TCP via the epoll reactor when `--listen` is given.
    Serve {
        engine: EngineOpts,
        net: ServeNetOpts,
    },
    /// Runs the consistent-hash router tier: accepts the JSON-lines
    /// protocol and forwards each request to one of N backend engine
    /// shards by tenant-id hash.
    Router {
        listen: String,
        /// Primary backend addresses in shard order (`--shard`,
        /// repeatable).
        shards: Vec<String>,
        /// Optional standby per shard (`--shard primary,standby`),
        /// promoted when the primary's connection dies.
        standbys: Vec<Option<String>>,
        opts: RouterOpts,
    },
    /// One-shot metrics client: fetches the `metrics` protocol op as
    /// JSON, or (with `--prom`) scrapes a `--metrics-listen` HTTP
    /// endpoint and prints the Prometheus text exposition.
    Metrics {
        connect: String,
        /// HTTP scrape of a `--metrics-listen` port instead of the
        /// JSON protocol op.
        prom: bool,
        /// Validate the exposition with the in-repo parser and append
        /// a `# exposition OK` comment line.
        check: bool,
        /// Per-request auth token (JSON mode only).
        auth: Option<String>,
    },
    /// Live tier dashboard: polls `metrics` + `history` on a running
    /// engine or router and redraws a terminal frame.
    Top {
        connect: String,
        /// Milliseconds between frames.
        interval_ms: u64,
        /// Print a single frame (no ANSI clearing) and exit.
        once: bool,
        /// Per-request auth token.
        auth: Option<String>,
    },
    /// One-shot quota client: reads or sets a tenant's per-op-class
    /// admission budgets via the `quota` protocol op, on an engine
    /// directly or through the router (the op routes by tenant hash).
    Quota {
        connect: String,
        tenant: String,
        /// Embed-budget per window; omitted classes stay unlimited
        /// when setting.
        embed: Option<u64>,
        detect: Option<u64>,
        maintain: Option<u64>,
        window_ms: Option<u64>,
        /// Per-request auth token.
        auth: Option<String>,
    },
    /// Queries recent spans from a running `serve --listen` engine or
    /// a `router` tier over TCP (the `trace` protocol op).
    Trace {
        connect: String,
        /// Exact trace-id filter.
        trace: Option<String>,
        /// Tenant filter.
        tenant: Option<String>,
        /// Op filter (embed/detect/maintain/…).
        for_op: Option<String>,
        /// Only spans at least this many milliseconds long.
        min_ms: Option<u64>,
        /// Span-count cap.
        limit: Option<u64>,
        /// Per-request auth token (for `--auth-token` servers).
        auth: Option<String>,
    },
    /// Recovers a data-dir (snapshot + log replay) and verifies the
    /// registration hash chain end to end.
    LedgerVerify {
        data_dir: String,
        ledger_key: Option<String>,
    },
    /// Processes a JSON-lines request file through the engine
    /// (detect waves run concurrently on the worker pool).
    Batch {
        input: String,
        engine: EngineOpts,
    },
    Help,
}

/// Worker-pool/cache flags shared by `serve` and `batch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOpts {
    pub workers: usize,
    pub queue: usize,
    pub cache_shards: usize,
    pub cache_capacity: usize,
    pub no_cache: bool,
    /// Durable registry data-dir; `None` keeps state in memory.
    pub data_dir: Option<String>,
    /// Registry mutations between snapshot/compaction cycles.
    pub snapshot_every: usize,
    /// Ledger HMAC key override (UTF-8 bytes).
    pub ledger_key: Option<String>,
    /// `(i, n)` from `--shard-id i/n`: this engine serves only tenants
    /// that jump-hash to shard `i` of `n` and refuses the rest.
    pub shard_id: Option<(usize, usize)>,
    /// Requests slower than this (queue wait + run) are logged as JSON
    /// lines on stderr; `Some(0)` logs every request, `None` disables.
    pub slow_ms: Option<u64>,
    /// Capacity of the in-process metrics retention ring (the
    /// `history` op's window is `retain_snapshots × retain_interval`).
    pub retain_snapshots: usize,
    /// Milliseconds between retained metrics snapshots.
    pub retain_interval_ms: u64,
    /// Default per-tenant embed budget per quota window; `None` is
    /// unlimited. Tenants can be overridden live via the `quota` op.
    pub quota_embed: Option<u64>,
    /// Default per-tenant detect budget per quota window.
    pub quota_detect: Option<u64>,
    /// Default per-tenant maintain budget per quota window.
    pub quota_maintain: Option<u64>,
    /// Width of the quota sliding window in milliseconds.
    pub quota_window_ms: Option<u64>,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            workers: 4,
            queue: 1024,
            cache_shards: 8,
            cache_capacity: 8_192,
            no_cache: false,
            data_dir: None,
            snapshot_every: 256,
            ledger_key: None,
            shard_id: None,
            slow_ms: None,
            retain_snapshots: 240,
            retain_interval_ms: 1000,
            quota_embed: None,
            quota_detect: None,
            quota_maintain: None,
            quota_window_ms: None,
        }
    }
}

/// Network front-end flags (`serve` only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeNetOpts {
    /// TCP listen address (e.g. `127.0.0.1:7700`, port 0 for
    /// ephemeral); `None` serves stdin/stdout.
    pub listen: Option<String>,
    /// Extra HTTP listener serving `GET /metrics` (Prometheus text)
    /// from the same reactor; announced as `metrics on <addr>`.
    pub metrics_listen: Option<String>,
    /// Concurrent connection cap.
    pub max_conns: usize,
    /// Idle connection timeout in seconds; 0 disables reaping.
    pub idle_timeout_secs: u64,
    /// Input frame-size cap in bytes (shared with the pipe transport).
    pub max_frame: usize,
    /// Shared-secret front-end auth: connections must `hello` with
    /// this token (or send it per-request as `"auth"`) first.
    pub auth_token: Option<String>,
    /// Primary address to replicate from: the engine starts as a
    /// read-only follower tailing this primary's ledger log, serving
    /// reads until a `promote` op flips it to a full primary.
    pub follow: Option<String>,
    /// Token presented to the primary's front-end when following
    /// (its `--auth-token`).
    pub follow_token: Option<String>,
}

impl Default for ServeNetOpts {
    fn default() -> Self {
        ServeNetOpts {
            listen: None,
            metrics_listen: None,
            max_conns: 1024,
            idle_timeout_secs: 0,
            max_frame: 1 << 20,
            auth_token: None,
            follow: None,
            follow_token: None,
        }
    }
}

/// Router-tier flags (`freqywm router`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterOpts {
    pub max_conns: usize,
    pub max_frame: usize,
    /// Extra HTTP listener serving `GET /metrics` with the router's
    /// own exposition (per-shard roles, lag, RTT histograms).
    pub metrics_listen: Option<String>,
    /// Client-side shared-secret auth (like `serve --auth-token`).
    pub auth_token: Option<String>,
    /// Token the router presents to backends (their `--auth-token`).
    pub shard_auth_token: Option<String>,
    /// Seconds between health probes of idle backends.
    pub probe_interval_secs: u64,
    /// Drain bound in seconds (shutdown op / SIGTERM).
    pub drain_timeout_secs: u64,
    /// How long requests park while a standby promotes before they
    /// error out (seconds).
    pub failover_timeout_secs: u64,
}

impl Default for RouterOpts {
    fn default() -> Self {
        RouterOpts {
            max_conns: 1024,
            max_frame: 1 << 20,
            metrics_listen: None,
            auth_token: None,
            shard_auth_token: None,
            probe_interval_secs: 2,
            drain_timeout_secs: 10,
            failover_timeout_secs: 10,
        }
    }
}

/// Parses `--shard-id i/n` (e.g. `0/4`).
pub fn parse_shard_id(s: &str) -> Result<(usize, usize), String> {
    let err = || format!("bad value for --shard-id: {s:?} (expected i/n, e.g. 0/4)");
    let (i, n) = s.split_once('/').ok_or_else(err)?;
    let i: usize = i.parse().map_err(|_| err())?;
    let n: usize = n.parse().map_err(|_| err())?;
    if n == 0 || i >= n {
        return Err(format!("bad value for --shard-id: {s:?} (need 0 <= i < n)"));
    }
    Ok((i, n))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    Sample,
    Destroy,
    Reorder,
}

/// Usage text shown by `freqywm help` and on errors.
pub const USAGE: &str = "\
freqywm — frequency watermarking for token datasets (FreqyWM, ICDE'24)

USAGE:
  freqywm generate --input <tokens.txt> --output <wm.txt> --secret-out <secret.fwm>
                   [--budget 2.0] [--z 131] [--selection optimal|greedy|random]
                   [--seed N] [--exclude-free-pairs] [--secret-label L]
  freqywm detect   --input <suspect.txt> --secret <secret.fwm> [--t 0] [--k 1]
                   [--scale F]
  freqywm inspect  --input <tokens.txt> [--z 131]
  freqywm attack   --input <wm.txt> --output <attacked.txt>
                   --kind sample|destroy|reorder --param <x> [--seed N]
  freqywm judge    --a-input <a.txt> --a-secret <a.fwm>
                   --b-input <b.txt> --b-secret <b.fwm> [--t 0] [--quorum 0.25]
  freqywm serve    [--listen <addr>] [--metrics-listen <addr>]
                   [--max-conns 1024] [--idle-timeout SECS]
                   [--max-frame BYTES] [--auth-token T] [--shard-id i/N]
                   [--workers 4] [--queue 1024] [--cache-shards 8]
                   [--cache-capacity 8192] [--no-cache] [--slow-ms MS]
                   [--retain-snapshots 240] [--retain-interval-ms 1000]
                   [--data-dir <dir>] [--snapshot-every 256] [--ledger-key K]
                   [--follow <primary-addr>] [--follow-token T]
                   [--quota-embed N] [--quota-detect N] [--quota-maintain N]
                   [--quota-window-ms 60000]
  freqywm router   --listen <addr> --shard <addr>[,<standby>]
                   [--shard <addr>[,<standby>] ...]
                   [--metrics-listen <addr>]
                   [--max-conns 1024] [--max-frame BYTES] [--auth-token T]
                   [--shard-auth-token T] [--probe-interval 2]
                   [--drain-timeout 10] [--failover-timeout 10]
  freqywm metrics  --connect <addr> [--prom] [--check] [--auth TOKEN]
  freqywm top      --connect <addr> [--interval-ms 1000] [--once]
                   [--auth TOKEN]
  freqywm quota    --connect <addr> --tenant T [--embed N] [--detect N]
                   [--maintain N] [--window-ms MS] [--auth TOKEN]
  freqywm trace    --connect <addr> [--trace ID] [--tenant T] [--for-op OP]
                   [--min-ms MS] [--limit N] [--auth TOKEN]
  freqywm batch    --input <requests.jsonl> [--workers 4] [--queue 1024]
                   [--cache-shards 8] [--cache-capacity 8192] [--no-cache]
                   [--data-dir <dir>] [--snapshot-every 256] [--ledger-key K]
  freqywm ledger verify --data-dir <dir> [--ledger-key K]
  freqywm help

Token files contain one token per line. `detect` exits 0 on accept,
1 on reject, 2 on error.

`serve` reads one JSON request per line on stdin and writes one JSON
response per line on stdout (ops: register, embed, detect, maintain,
dispute, metrics, shutdown). With `--listen <addr>` it instead serves
the same protocol over TCP from a non-blocking epoll reactor: one
reactor thread plus the worker pool handle every connection (the bound
address is printed as `listening on <addr>` on startup; `--idle-timeout
0` disables idle reaping; a `shutdown` op drains gracefully — stop
accepting, flush in-flight responses, close). `batch` runs the protocol
over a file, running consecutive detect requests concurrently on the
worker pool.

`router` scales the same protocol across processes: each request is
forwarded to one of N backend `serve --listen` shards by
jump-consistent hash on the tenant id (`metrics` fans out to every
shard and merges; `shutdown` drains the whole tier; SIGTERM drains the
router only, leaving backends up). Give each backend `--shard-id i/N`
(matching its position in the router's --shard list) so a misrouted
tenant is refused, and its own --data-dir so durability stays per
partition. `--auth-token` on serve or router locks the socket behind a
hello handshake; the router presents `--shard-auth-token` to its
backends.

`serve --follow <primary-addr>` starts the engine as a read-only
standby: it tails the primary's ledger log over the `replicate`
protocol op into its own --data-dir, serves reads (detect, dispute,
metrics, trace) while refusing mutations, and becomes a full primary
when it receives a `promote` op. Give each router shard a standby as
`--shard <primary>,<standby>`: when the primary's connection dies the
router promotes the standby and redirects that shard's traffic to it
(requests arriving during promotion park for up to --failover-timeout
seconds; only requests in flight at the instant of death error). See
docs/replication.md.

`serve --metrics-listen <addr>` (and the router's flag of the same
name) adds an HTTP listener on the same reactor answering `GET
/metrics` with the Prometheus text exposition (0.0.4); every other
target is 404 and connections are one-shot. `freqywm metrics --connect
<addr>` fetches the JSON `metrics` op (or, with `--prom`, scrapes the
HTTP endpoint; `--check` validates the exposition with the in-repo
parser). The engine also retains a ring of periodic metrics snapshots
(`--retain-snapshots` × `--retain-interval-ms` deep) served by the
`history` protocol op with derived window rates; `freqywm top
--connect <addr>` polls `metrics` + `history` into a refreshing
per-shard dashboard (`--once` prints a single frame for scripts). See
docs/observability.md.

`serve --quota-embed/--quota-detect/--quota-maintain N` cap every
tenant at N jobs of that class per sliding `--quota-window-ms` window
(default 60 s); an omitted class is unlimited. Jobs over budget are
refused at admission with a typed `quota_exhausted` error carrying a
`retry_after_ms` hint — they never occupy the queue. `freqywm quota
--connect <addr> --tenant T` reads a tenant's effective budgets and
window usage; adding `--embed/--detect/--maintain/--window-ms` sets
them live (persisted in the registry log, replicated to standbys; an
omitted class becomes unlimited for that tenant). Works against an
engine or the router. See docs/quotas.md.

`trace` connects to a running `serve --listen` engine (or a `router`,
which fans the query out to every shard) and prints the recent stage
spans — parse, auth, queue_wait, run, prf_sweep, respond — matching the
given filters, one JSON response on stdout. Every protocol request may
carry a `\"trace\":\"id\"` field; the router mints one when absent, so
a single id follows a request from client to router to shard to worker.
`serve --slow-ms N` additionally logs any request whose queue wait plus
run time reaches N milliseconds as a JSON line on stderr (0 logs every
request).

With `--data-dir` the registry and its hash-chained ledger live in an
append-only, fsync'd, checksummed log (plus periodic snapshots), so
registration chronology survives restarts and crashes; `ledger verify`
recovers a data-dir read-only and re-proves the whole chain (exit 0
verified / 1 corrupt or unrecoverable).";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {a:?}"))?;
        // Boolean flags take no value.
        if matches!(
            key,
            "exclude-free-pairs" | "no-cache" | "prom" | "check" | "once"
        ) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn req(flags: &HashMap<String, String>, key: &str) -> Result<String, String> {
    flags
        .get(key)
        .cloned()
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn opt_parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for --{key}: {v:?}")),
        None => Ok(default),
    }
}

fn parse_engine_opts(f: &HashMap<String, String>) -> Result<EngineOpts, String> {
    let defaults = EngineOpts::default();
    Ok(EngineOpts {
        workers: opt_parse(f, "workers", defaults.workers)?,
        queue: opt_parse(f, "queue", defaults.queue)?,
        cache_shards: opt_parse(f, "cache-shards", defaults.cache_shards)?,
        cache_capacity: opt_parse(f, "cache-capacity", defaults.cache_capacity)?,
        no_cache: f.contains_key("no-cache"),
        data_dir: f.get("data-dir").cloned(),
        snapshot_every: opt_parse(f, "snapshot-every", defaults.snapshot_every)?,
        ledger_key: f.get("ledger-key").cloned(),
        shard_id: f.get("shard-id").map(|s| parse_shard_id(s)).transpose()?,
        slow_ms: f
            .get("slow-ms")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("bad value for --slow-ms: {v:?}"))
            })
            .transpose()?,
        retain_snapshots: opt_parse(f, "retain-snapshots", defaults.retain_snapshots)?,
        retain_interval_ms: opt_parse(f, "retain-interval-ms", defaults.retain_interval_ms)?,
        quota_embed: opt_u64(f, "quota-embed")?,
        quota_detect: opt_u64(f, "quota-detect")?,
        quota_maintain: opt_u64(f, "quota-maintain")?,
        quota_window_ms: opt_u64(f, "quota-window-ms")?,
    })
}

fn opt_u64(f: &HashMap<String, String>, key: &str) -> Result<Option<u64>, String> {
    f.get(key)
        .map(|v| {
            v.parse()
                .map_err(|_| format!("bad value for --{key}: {v:?}"))
        })
        .transpose()
}

/// Parses the command line (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let f = parse_flags(rest)?;
            let selection = match f.get("selection").map(|s| s.as_str()).unwrap_or("optimal") {
                "optimal" => Selection::Optimal,
                "greedy" => Selection::Greedy,
                "random" => Selection::Random {
                    seed: opt_parse(&f, "seed", 0u64)?,
                },
                other => return Err(format!("unknown selection {other:?}")),
            };
            Ok(Command::Generate {
                input: req(&f, "input")?,
                output: req(&f, "output")?,
                secret_out: req(&f, "secret-out")?,
                budget: opt_parse(&f, "budget", 2.0f64)?,
                z: opt_parse(&f, "z", 131u64)?,
                selection,
                exclude_free_pairs: f.contains_key("exclude-free-pairs"),
                secret_label: f.get("secret-label").cloned(),
            })
        }
        "detect" => {
            let f = parse_flags(rest)?;
            let scale = match f.get("scale") {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| format!("bad value for --scale: {v:?}"))?,
                ),
                None => None,
            };
            Ok(Command::Detect {
                input: req(&f, "input")?,
                secret: req(&f, "secret")?,
                t: opt_parse(&f, "t", 0u64)?,
                k: opt_parse(&f, "k", 1usize)?,
                scale,
            })
        }
        "inspect" => {
            let f = parse_flags(rest)?;
            Ok(Command::Inspect {
                input: req(&f, "input")?,
                z: opt_parse(&f, "z", 131u64)?,
            })
        }
        "attack" => {
            let f = parse_flags(rest)?;
            let kind = match req(&f, "kind")?.as_str() {
                "sample" => AttackKind::Sample,
                "destroy" => AttackKind::Destroy,
                "reorder" => AttackKind::Reorder,
                other => return Err(format!("unknown attack kind {other:?}")),
            };
            Ok(Command::Attack {
                input: req(&f, "input")?,
                output: req(&f, "output")?,
                kind,
                param: req(&f, "param")?
                    .parse()
                    .map_err(|_| "bad value for --param".to_string())?,
                seed: opt_parse(&f, "seed", 0u64)?,
            })
        }
        "serve" => {
            let f = parse_flags(rest)?;
            let net_defaults = ServeNetOpts::default();
            Ok(Command::Serve {
                engine: parse_engine_opts(&f)?,
                net: ServeNetOpts {
                    listen: f.get("listen").cloned(),
                    metrics_listen: f.get("metrics-listen").cloned(),
                    max_conns: opt_parse(&f, "max-conns", net_defaults.max_conns)?,
                    idle_timeout_secs: opt_parse(
                        &f,
                        "idle-timeout",
                        net_defaults.idle_timeout_secs,
                    )?,
                    max_frame: opt_parse(&f, "max-frame", net_defaults.max_frame)?,
                    auth_token: f.get("auth-token").cloned(),
                    follow: f.get("follow").cloned(),
                    follow_token: f.get("follow-token").cloned(),
                },
            })
        }
        "router" => {
            // `--shard` repeats (once per backend, in shard order), so
            // it is collected before the single-value flag parser runs.
            // Each value is `<primary>[,<standby>]`: the optional
            // second address is a read-only follower the router
            // promotes when the primary's connection dies.
            let mut shards: Vec<String> = Vec::new();
            let mut standbys: Vec<Option<String>> = Vec::new();
            let mut flag_args: Vec<String> = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                if rest[i] == "--shard" {
                    let v = rest
                        .get(i + 1)
                        .ok_or_else(|| "flag --shard needs a value".to_string())?;
                    let (primary, standby) = match v.split_once(',') {
                        Some((p, s)) => (p.trim(), Some(s.trim())),
                        None => (v.trim(), None),
                    };
                    // An empty entry would silently shift every
                    // index in the shard map off its --shard-id, or
                    // promote into the void on failover.
                    if primary.is_empty()
                        || standby == Some("")
                        || standby.is_some_and(|s| s.contains(','))
                    {
                        return Err(format!(
                            "bad --shard {v:?} (expected <primary>[,<standby>])"
                        ));
                    }
                    shards.push(primary.to_string());
                    standbys.push(standby.map(str::to_string));
                    i += 2;
                } else {
                    flag_args.push(rest[i].clone());
                    i += 1;
                }
            }
            let f = parse_flags(&flag_args)?;
            if shards.is_empty() {
                return Err(format!(
                    "router needs at least one --shard <addr>\n\n{USAGE}"
                ));
            }
            let defaults = RouterOpts::default();
            Ok(Command::Router {
                listen: req(&f, "listen")?,
                shards,
                standbys,
                opts: RouterOpts {
                    max_conns: opt_parse(&f, "max-conns", defaults.max_conns)?,
                    max_frame: opt_parse(&f, "max-frame", defaults.max_frame)?,
                    metrics_listen: f.get("metrics-listen").cloned(),
                    auth_token: f.get("auth-token").cloned(),
                    shard_auth_token: f.get("shard-auth-token").cloned(),
                    probe_interval_secs: opt_parse(
                        &f,
                        "probe-interval",
                        defaults.probe_interval_secs,
                    )?,
                    drain_timeout_secs: opt_parse(
                        &f,
                        "drain-timeout",
                        defaults.drain_timeout_secs,
                    )?,
                    failover_timeout_secs: opt_parse(
                        &f,
                        "failover-timeout",
                        defaults.failover_timeout_secs,
                    )?,
                },
            })
        }
        "batch" => {
            let f = parse_flags(rest)?;
            Ok(Command::Batch {
                input: req(&f, "input")?,
                engine: parse_engine_opts(&f)?,
            })
        }
        "metrics" => {
            let f = parse_flags(rest)?;
            let prom = f.contains_key("prom");
            let check = f.contains_key("check");
            if check && !prom {
                return Err("--check requires --prom (it validates the HTTP exposition)".into());
            }
            Ok(Command::Metrics {
                connect: req(&f, "connect")?,
                prom,
                check,
                auth: f.get("auth").cloned(),
            })
        }
        "top" => {
            let f = parse_flags(rest)?;
            Ok(Command::Top {
                connect: req(&f, "connect")?,
                interval_ms: opt_parse(&f, "interval-ms", 1000u64)?,
                once: f.contains_key("once"),
                auth: f.get("auth").cloned(),
            })
        }
        "quota" => {
            let f = parse_flags(rest)?;
            Ok(Command::Quota {
                connect: req(&f, "connect")?,
                tenant: req(&f, "tenant")?,
                embed: opt_u64(&f, "embed")?,
                detect: opt_u64(&f, "detect")?,
                maintain: opt_u64(&f, "maintain")?,
                window_ms: opt_u64(&f, "window-ms")?,
                auth: f.get("auth").cloned(),
            })
        }
        "trace" => {
            let f = parse_flags(rest)?;
            let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
                f.get(key)
                    .map(|v| {
                        v.parse()
                            .map_err(|_| format!("bad value for --{key}: {v:?}"))
                    })
                    .transpose()
            };
            Ok(Command::Trace {
                connect: req(&f, "connect")?,
                trace: f.get("trace").cloned(),
                tenant: f.get("tenant").cloned(),
                for_op: f.get("for-op").cloned(),
                min_ms: parse_u64("min-ms")?,
                limit: parse_u64("limit")?,
                auth: f.get("auth").cloned(),
            })
        }
        "ledger" => {
            let Some((sub, rest)) = rest.split_first() else {
                return Err(format!("ledger needs a subcommand (verify)\n\n{USAGE}"));
            };
            if sub != "verify" {
                return Err(format!("unknown ledger subcommand {sub:?}\n\n{USAGE}"));
            }
            let f = parse_flags(rest)?;
            Ok(Command::LedgerVerify {
                data_dir: req(&f, "data-dir")?,
                ledger_key: f.get("ledger-key").cloned(),
            })
        }
        "judge" => {
            let f = parse_flags(rest)?;
            Ok(Command::Judge {
                a_input: req(&f, "a-input")?,
                a_secret: req(&f, "a-secret")?,
                b_input: req(&f, "b-input")?,
                b_secret: req(&f, "b-secret")?,
                t: opt_parse(&f, "t", 0u64)?,
                quorum: opt_parse(&f, "quorum", 0.25f64)?,
            })
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn generate_defaults() {
        let c = parse_args(&v(&[
            "generate",
            "--input",
            "in.txt",
            "--output",
            "out.txt",
            "--secret-out",
            "s.fwm",
        ]))
        .unwrap();
        match c {
            Command::Generate {
                budget,
                z,
                selection,
                exclude_free_pairs,
                ..
            } => {
                assert_eq!(budget, 2.0);
                assert_eq!(z, 131);
                assert_eq!(selection, Selection::Optimal);
                assert!(!exclude_free_pairs);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn generate_full_flags() {
        let c = parse_args(&v(&[
            "generate",
            "--input",
            "a",
            "--output",
            "b",
            "--secret-out",
            "c",
            "--budget",
            "0.5",
            "--z",
            "1031",
            "--selection",
            "random",
            "--seed",
            "7",
            "--exclude-free-pairs",
            "--secret-label",
            "demo",
        ]))
        .unwrap();
        match c {
            Command::Generate {
                budget,
                z,
                selection,
                exclude_free_pairs,
                secret_label,
                ..
            } => {
                assert_eq!(budget, 0.5);
                assert_eq!(z, 1031);
                assert_eq!(selection, Selection::Random { seed: 7 });
                assert!(exclude_free_pairs);
                assert_eq!(secret_label.as_deref(), Some("demo"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn detect_with_scale() {
        let c = parse_args(&v(&[
            "detect", "--input", "x", "--secret", "s", "--t", "4", "--k", "10", "--scale", "5.0",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Detect {
                input: "x".into(),
                secret: "s".into(),
                t: 4,
                k: 10,
                scale: Some(5.0)
            }
        );
    }

    #[test]
    fn attack_kinds() {
        for (s, k) in [
            ("sample", AttackKind::Sample),
            ("destroy", AttackKind::Destroy),
            ("reorder", AttackKind::Reorder),
        ] {
            let c = parse_args(&v(&[
                "attack", "--input", "a", "--output", "b", "--kind", s, "--param", "0.5",
            ]))
            .unwrap();
            match c {
                Command::Attack {
                    kind, param, seed, ..
                } => {
                    assert_eq!(kind, k);
                    assert_eq!(param, 0.5);
                    assert_eq!(seed, 0);
                }
                _ => panic!("wrong command"),
            }
        }
    }

    #[test]
    fn judge_flags() {
        let c = parse_args(&v(&[
            "judge",
            "--a-input",
            "a.txt",
            "--a-secret",
            "a.fwm",
            "--b-input",
            "b.txt",
            "--b-secret",
            "b.fwm",
            "--quorum",
            "0.5",
        ]))
        .unwrap();
        match c {
            Command::Judge {
                t, quorum, a_input, ..
            } => {
                assert_eq!(t, 0);
                assert_eq!(quorum, 0.5);
                assert_eq!(a_input, "a.txt");
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&v(&["judge", "--a-input", "a.txt"])).is_err());
    }

    #[test]
    fn serve_and_batch_flags() {
        assert_eq!(
            parse_args(&v(&["serve"])).unwrap(),
            Command::Serve {
                engine: EngineOpts::default(),
                net: ServeNetOpts::default(),
            }
        );
        let c = parse_args(&v(&[
            "serve",
            "--workers",
            "8",
            "--queue",
            "64",
            "--no-cache",
        ]))
        .unwrap();
        match c {
            Command::Serve { engine, net } => {
                assert_eq!(engine.workers, 8);
                assert_eq!(engine.queue, 64);
                assert!(engine.no_cache);
                assert_eq!(net.listen, None);
            }
            _ => panic!("wrong command"),
        }
        let c = parse_args(&v(&[
            "batch",
            "--input",
            "reqs.jsonl",
            "--cache-shards",
            "2",
            "--cache-capacity",
            "100",
        ]))
        .unwrap();
        match c {
            Command::Batch { input, engine } => {
                assert_eq!(input, "reqs.jsonl");
                assert_eq!(engine.cache_shards, 2);
                assert_eq!(engine.cache_capacity, 100);
                assert!(!engine.no_cache);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&v(&["batch"])).is_err(), "batch needs --input");
        assert!(parse_args(&v(&["serve", "--workers", "x"])).is_err());
    }

    #[test]
    fn serve_network_flags() {
        let c = parse_args(&v(&[
            "serve",
            "--listen",
            "127.0.0.1:7700",
            "--max-conns",
            "2000",
            "--idle-timeout",
            "300",
            "--max-frame",
            "65536",
        ]))
        .unwrap();
        match c {
            Command::Serve { net, .. } => {
                assert_eq!(net.listen.as_deref(), Some("127.0.0.1:7700"));
                assert_eq!(net.max_conns, 2000);
                assert_eq!(net.idle_timeout_secs, 300);
                assert_eq!(net.max_frame, 65536);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&v(&["serve", "--max-conns", "many"])).is_err());
        assert!(parse_args(&v(&["serve", "--listen"])).is_err());
    }

    #[test]
    fn router_flags_collect_repeated_shards() {
        let c = parse_args(&v(&[
            "router",
            "--listen",
            "127.0.0.1:7700",
            "--shard",
            "127.0.0.1:7701",
            "--shard",
            "127.0.0.1:7702,127.0.0.1:7703",
            "--auth-token",
            "front",
            "--shard-auth-token",
            "back",
            "--probe-interval",
            "5",
        ]))
        .unwrap();
        match c {
            Command::Router {
                listen,
                shards,
                standbys,
                opts,
            } => {
                assert_eq!(listen, "127.0.0.1:7700");
                // One shard per --shard flag; a comma attaches a
                // standby to that shard rather than adding a shard.
                assert_eq!(shards, vec!["127.0.0.1:7701", "127.0.0.1:7702"]);
                assert_eq!(standbys, vec![None, Some("127.0.0.1:7703".to_string())]);
                assert_eq!(opts.auth_token.as_deref(), Some("front"));
                assert_eq!(opts.shard_auth_token.as_deref(), Some("back"));
                assert_eq!(opts.probe_interval_secs, 5);
                assert_eq!(opts.drain_timeout_secs, 10);
                assert_eq!(opts.failover_timeout_secs, 10);
            }
            _ => panic!("wrong command"),
        }
        assert!(
            parse_args(&v(&["router", "--listen", "x"])).is_err(),
            "router needs --shard"
        );
        assert!(
            parse_args(&v(&["router", "--shard", "a:1"])).is_err(),
            "router needs --listen"
        );
        // Empty addresses would shift every shard index off its
        // backend's --shard-id, or promote into the void on failover.
        assert!(
            parse_args(&v(&["router", "--listen", "x", "--shard", "a:1,"])).is_err(),
            "empty standby must be rejected"
        );
        assert!(
            parse_args(&v(&["router", "--listen", "x", "--shard", "a:1,,b:2"])).is_err(),
            "two commas must be rejected"
        );
        assert!(
            parse_args(&v(&["router", "--listen", "x", "--shard", ",b:2"])).is_err(),
            "empty primary must be rejected"
        );
    }

    #[test]
    fn serve_follow_flags() {
        let c = parse_args(&v(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--follow",
            "127.0.0.1:7701",
            "--follow-token",
            "hunter2",
        ]))
        .unwrap();
        match c {
            Command::Serve { net, .. } => {
                assert_eq!(net.follow.as_deref(), Some("127.0.0.1:7701"));
                assert_eq!(net.follow_token.as_deref(), Some("hunter2"));
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&["serve"])).unwrap() {
            Command::Serve { net, .. } => assert_eq!(net.follow, None),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn serve_shard_id_and_auth() {
        let c = parse_args(&v(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--shard-id",
            "1/4",
            "--auth-token",
            "secret",
        ]))
        .unwrap();
        match c {
            Command::Serve { engine, net } => {
                assert_eq!(engine.shard_id, Some((1, 4)));
                assert_eq!(net.auth_token.as_deref(), Some("secret"));
            }
            _ => panic!("wrong command"),
        }
        assert_eq!(parse_shard_id("0/2"), Ok((0, 2)));
        assert!(parse_shard_id("2/2").is_err(), "index out of range");
        assert!(parse_shard_id("0/0").is_err());
        assert!(parse_shard_id("x/2").is_err());
        assert!(parse_shard_id("3").is_err());
        assert!(parse_args(&v(&["serve", "--shard-id", "9/4"])).is_err());
    }

    #[test]
    fn slow_ms_and_trace_flags() {
        let c = parse_args(&v(&["serve", "--slow-ms", "250"])).unwrap();
        match c {
            Command::Serve { engine, .. } => assert_eq!(engine.slow_ms, Some(250)),
            _ => panic!("wrong command"),
        }
        let c = parse_args(&v(&["serve"])).unwrap();
        match c {
            Command::Serve { engine, .. } => assert_eq!(engine.slow_ms, None),
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&v(&["serve", "--slow-ms", "fast"])).is_err());

        let c = parse_args(&v(&[
            "trace",
            "--connect",
            "127.0.0.1:7700",
            "--tenant",
            "acme",
            "--for-op",
            "detect",
            "--min-ms",
            "5",
            "--limit",
            "20",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Trace {
                connect: "127.0.0.1:7700".into(),
                trace: None,
                tenant: Some("acme".into()),
                for_op: Some("detect".into()),
                min_ms: Some(5),
                limit: Some(20),
                auth: None,
            }
        );
        assert!(parse_args(&v(&["trace"])).is_err(), "trace needs --connect");
        assert!(parse_args(&v(&["trace", "--connect", "x", "--min-ms", "soon"])).is_err());
    }

    #[test]
    fn metrics_and_top_flags() {
        let c = parse_args(&v(&["metrics", "--connect", "127.0.0.1:9900"])).unwrap();
        assert_eq!(
            c,
            Command::Metrics {
                connect: "127.0.0.1:9900".into(),
                prom: false,
                check: false,
                auth: None,
            }
        );
        let c = parse_args(&v(&[
            "metrics",
            "--connect",
            "127.0.0.1:9900",
            "--prom",
            "--check",
            "--auth",
            "tok",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Metrics {
                connect: "127.0.0.1:9900".into(),
                prom: true,
                check: true,
                auth: Some("tok".into()),
            }
        );
        assert!(
            parse_args(&v(&["metrics", "--connect", "x", "--check"])).is_err(),
            "--check without --prom must be rejected"
        );
        assert!(parse_args(&v(&["metrics"])).is_err(), "needs --connect");

        let c = parse_args(&v(&["top", "--connect", "127.0.0.1:7700", "--once"])).unwrap();
        assert_eq!(
            c,
            Command::Top {
                connect: "127.0.0.1:7700".into(),
                interval_ms: 1000,
                once: true,
                auth: None,
            }
        );
        let c = parse_args(&v(&["top", "--connect", "x", "--interval-ms", "250"])).unwrap();
        match c {
            Command::Top {
                interval_ms, once, ..
            } => {
                assert_eq!(interval_ms, 250);
                assert!(!once);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&v(&["top"])).is_err(), "top needs --connect");
    }

    #[test]
    fn metrics_listen_and_retention_flags() {
        let c = parse_args(&v(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:9900",
            "--retain-snapshots",
            "16",
            "--retain-interval-ms",
            "50",
        ]))
        .unwrap();
        match c {
            Command::Serve { engine, net } => {
                assert_eq!(net.metrics_listen.as_deref(), Some("127.0.0.1:9900"));
                assert_eq!(engine.retain_snapshots, 16);
                assert_eq!(engine.retain_interval_ms, 50);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&["serve"])).unwrap() {
            Command::Serve { engine, net } => {
                assert_eq!(net.metrics_listen, None);
                assert_eq!(engine.retain_snapshots, 240);
                assert_eq!(engine.retain_interval_ms, 1000);
            }
            _ => panic!("wrong command"),
        }
        let c = parse_args(&v(&[
            "router",
            "--listen",
            "x",
            "--shard",
            "a:1",
            "--metrics-listen",
            "127.0.0.1:9901",
        ]))
        .unwrap();
        match c {
            Command::Router { opts, .. } => {
                assert_eq!(opts.metrics_listen.as_deref(), Some("127.0.0.1:9901"));
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&v(&["serve", "--retain-snapshots", "lots"])).is_err());
    }

    #[test]
    fn quota_flags_on_serve_and_one_shot() {
        let c = parse_args(&v(&[
            "serve",
            "--quota-embed",
            "100",
            "--quota-window-ms",
            "5000",
        ]))
        .unwrap();
        match c {
            Command::Serve { engine, .. } => {
                assert_eq!(engine.quota_embed, Some(100));
                assert_eq!(engine.quota_detect, None);
                assert_eq!(engine.quota_maintain, None);
                assert_eq!(engine.quota_window_ms, Some(5000));
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&v(&["serve"])).unwrap() {
            Command::Serve { engine, .. } => {
                assert_eq!(engine.quota_embed, None);
                assert_eq!(engine.quota_window_ms, None);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&v(&["serve", "--quota-embed", "lots"])).is_err());

        let c = parse_args(&v(&[
            "quota",
            "--connect",
            "x:1",
            "--tenant",
            "acme",
            "--embed",
            "50",
            "--auth",
            "tok",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Quota {
                connect: "x:1".into(),
                tenant: "acme".into(),
                embed: Some(50),
                detect: None,
                maintain: None,
                window_ms: None,
                auth: Some("tok".into()),
            }
        );
        assert!(
            parse_args(&v(&["quota", "--connect", "x:1"])).is_err(),
            "quota needs --tenant"
        );
        assert!(
            parse_args(&v(&["quota", "--tenant", "t"])).is_err(),
            "quota needs --connect"
        );
    }

    #[test]
    fn durability_flags_and_ledger_verify() {
        let c = parse_args(&v(&[
            "serve",
            "--data-dir",
            "/var/lib/freqywm",
            "--snapshot-every",
            "16",
            "--ledger-key",
            "prod-key",
        ]))
        .unwrap();
        match c {
            Command::Serve { engine, .. } => {
                assert_eq!(engine.data_dir.as_deref(), Some("/var/lib/freqywm"));
                assert_eq!(engine.snapshot_every, 16);
                assert_eq!(engine.ledger_key.as_deref(), Some("prod-key"));
            }
            _ => panic!("wrong command"),
        }
        assert_eq!(
            parse_args(&v(&["ledger", "verify", "--data-dir", "d"])).unwrap(),
            Command::LedgerVerify {
                data_dir: "d".into(),
                ledger_key: None,
            }
        );
        assert!(parse_args(&v(&["ledger"])).is_err());
        assert!(parse_args(&v(&["ledger", "burn"])).is_err());
        assert!(
            parse_args(&v(&["ledger", "verify"])).is_err(),
            "needs --data-dir"
        );
    }

    #[test]
    fn errors() {
        assert!(parse_args(&v(&["generate", "--input", "a"])).is_err());
        assert!(parse_args(&v(&["nonsense"])).is_err());
        assert!(parse_args(&v(&["detect", "--input"])).is_err());
        assert!(parse_args(&v(&["detect", "badpositional"])).is_err());
        assert!(parse_args(&v(&[
            "generate",
            "--input",
            "a",
            "--output",
            "b",
            "--secret-out",
            "c",
            "--z",
            "notanumber"
        ]))
        .is_err());
        assert!(parse_args(&v(&[
            "attack", "--input", "a", "--output", "b", "--kind", "meteor", "--param", "1"
        ]))
        .is_err());
    }
}
