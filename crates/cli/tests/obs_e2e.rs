//! Observability end-to-end: a real `freqywm router` in front of real
//! `freqywm serve --listen` shards. A client-supplied trace id must be
//! retrievable through the tier's `trace` op with distinct queue-wait
//! and run spans, and `--slow-ms` must gate the stderr slow log.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed mid-request");
        resp.trim_end().to_string()
    }
}

fn counts_json(n: usize) -> String {
    let entries: Vec<String> = (0..n)
        .map(|i| format!("[\"tok{i:02}\",{}]", 2_000 / (i + 1) + 3 * (n - i)))
        .collect();
    format!("[{}]", entries.join(","))
}

fn read_announcement(child: &mut Child) -> SocketAddr {
    let stdout = child.stdout.take().expect("captured stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read announcement");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .parse()
        .expect("parse bound address");
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    addr
}

/// Spawns a shard with stderr captured (for slow-log assertions).
fn spawn_backend(shard: usize, of: usize, extra: &[&str]) -> (Child, SocketAddr) {
    let mut args = vec![
        "serve".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--workers".to_string(),
        "2".to_string(),
        "--shard-id".to_string(),
        format!("{shard}/{of}"),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn freqywm serve shard");
    let addr = read_announcement(&mut child);
    (child, addr)
}

fn spawn_router(shard_addrs: &[SocketAddr]) -> (Child, SocketAddr) {
    let mut args = vec![
        "router".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
    ];
    for a in shard_addrs {
        args.push("--shard".to_string());
        args.push(a.to_string());
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm router");
    let addr = read_announcement(&mut child);
    (child, addr)
}

fn wait_until_shards_up(c: &mut Client, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let m = c.request(r#"{"op":"metrics"}"#);
        if m.contains(&format!("\"shards_up\":{want}")) {
            return;
        }
        assert!(Instant::now() < deadline, "shards never came up: {m}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

fn reap_stderr(child: &mut Child) -> String {
    let mut err = String::new();
    child
        .stderr
        .take()
        .expect("captured stderr")
        .read_to_string(&mut err)
        .expect("read stderr");
    err
}

#[test]
fn client_trace_id_is_retrievable_through_the_tier_with_stage_spans() {
    // Shard 0 logs everything (--slow-ms 0); shard 1 logs nothing that
    // finishes inside a minute — together they pin both sides of the
    // slow-log threshold in one deployment.
    let (mut backend0, addr0) = spawn_backend(0, 2, &["--slow-ms", "0"]);
    let (mut backend1, addr1) = spawn_backend(1, 2, &["--slow-ms", "60000"]);
    let (mut router, router_addr) = spawn_router(&[addr0, addr1]);

    let mut c = Client::connect(router_addr);
    wait_until_shards_up(&mut c, 2);

    // One tenant per shard, each embedding with a client-supplied
    // trace id riding the request line.
    let tenants: [String; 2] = [0, 1].map(|s| {
        (0..100)
            .map(|i| format!("tenant-{i:03}"))
            .find(|t| freqywm_shard::tenant_shard(t, 2) == s)
            .expect("some tenant hashes to each shard")
    });
    for (s, t) in tenants.iter().enumerate() {
        let r = c.request(&format!(
            "{{\"op\":\"register\",\"tenant\":\"{t}\",\"secret_label\":\"obs-{t}\"}}"
        ));
        assert!(r.contains("\"ok\":true"), "register {t}: {r}");
        let r = c.request(&format!(
            "{{\"op\":\"embed\",\"tenant\":\"{t}\",\"z\":19,\"trace\":\"t-42-{s}\",\"counts\":{}}}",
            counts_json(40)
        ));
        assert!(r.contains("chosen_pairs"), "embed {t}: {r}");
    }

    // The trace op fans out and merges: the client's id comes back from
    // the owning shard with queue-wait and run recorded as distinct
    // spans, each tagged with its shard.
    for s in 0..2 {
        let r = c.request(&format!("{{\"op\":\"trace\",\"trace\":\"t-42-{s}\"}}"));
        assert!(r.contains("\"ok\":true"), "{r}");
        assert!(r.contains("\"router\":true"), "{r}");
        assert!(r.contains(&format!("\"trace\":\"t-42-{s}\"")), "{r}");
        assert!(r.contains(&format!("\"shard\":{s}")), "{r}");
        for stage in ["queue_wait", "run"] {
            assert!(
                r.contains(&format!("\"stage\":\"{stage}\"")),
                "{stage}: {r}"
            );
        }
    }

    // A router-side filter miss is empty, not an error.
    let r = c.request(r#"{"op":"trace","trace":"t-nonexistent"}"#);
    assert!(
        r.contains("\"ok\":true") && r.contains("\"count\":0"),
        "{r}"
    );

    // The `freqywm trace` subcommand speaks the same protocol.
    let out = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args([
            "trace",
            "--connect",
            &router_addr.to_string(),
            "--trace",
            "t-42-0",
        ])
        .output()
        .expect("run freqywm trace");
    let cli = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{cli}");
    assert!(cli.contains("\"trace\":\"t-42-0\""), "{cli}");
    assert!(cli.contains("\"stage\":\"run\""), "{cli}");

    // Tier drain, then the slow-log check on captured stderr.
    let ack = c.request(r#"{"op":"shutdown"}"#);
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    assert!(router.wait().expect("router exit").success());
    assert!(backend0.wait().expect("backend 0 exit").success());
    assert!(backend1.wait().expect("backend 1 exit").success());

    // Shard 0 (--slow-ms 0): every request logged, with the client's
    // trace id attached. Shard 1 (--slow-ms 60000): silence.
    let err0 = reap_stderr(&mut backend0);
    assert!(err0.contains("\"slow_request\":true"), "{err0}");
    assert!(err0.contains("\"trace\":\"t-42-0\""), "{err0}");
    assert!(err0.contains("\"queue_us\":"), "{err0}");
    assert!(err0.contains("\"run_us\":"), "{err0}");
    let err1 = reap_stderr(&mut backend1);
    assert!(
        !err1.contains("\"slow_request\""),
        "sub-threshold request hit the slow log: {err1}"
    );
}
