//! Multi-process sharding end-to-end: the real `freqywm router` binary
//! in front of two real `freqywm serve --listen --shard-id --data-dir`
//! backends, 50 tenants of mixed embed/detect traffic, one backend
//! killed mid-flight, a tier drain, and post-mortem verification that
//! each shard's data-dir holds exactly its own tenants.
#![cfg(unix)]

use freqywm_shard::tenant_shard;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TENANTS: usize = 50;
const THREADS: usize = 10;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed mid-request");
        resp.trim_end().to_string()
    }
}

fn counts_json(n: usize) -> String {
    let entries: Vec<String> = (0..n)
        .map(|i| format!("[\"tok{i:02}\",{}]", 2_000 / (i + 1) + 3 * (n - i)))
        .collect();
    format!("[{}]", entries.join(","))
}

fn read_announcement(child: &mut Child) -> SocketAddr {
    let stdout = child.stdout.take().expect("captured stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read announcement");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .parse()
        .expect("parse bound address");
    // Keep draining stdout (shard-map log lines etc.) so the child
    // never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    addr
}

fn spawn_backend(shard: usize, of: usize, data_dir: &str) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "4096",
            "--data-dir",
            data_dir,
            "--shard-id",
            &format!("{shard}/{of}"),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm serve shard");
    let addr = read_announcement(&mut child);
    (child, addr)
}

fn spawn_router(shard_addrs: &[SocketAddr]) -> (Child, SocketAddr) {
    let mut args = vec![
        "router".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
    ];
    for a in shard_addrs {
        args.push("--shard".to_string());
        args.push(a.to_string());
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm router");
    let addr = read_announcement(&mut child);
    (child, addr)
}

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(args)
        .output()
        .expect("run freqywm");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn tmp_dir(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("freqywm-router-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p.to_string_lossy().into_owned()
}

fn tenant_name(i: usize) -> String {
    format!("tenant-{i:03}")
}

/// Backends connect asynchronously; wait until the router reports every
/// shard live.
fn wait_until_shards_up(c: &mut Client, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let m = c.request(r#"{"op":"metrics"}"#);
        if m.contains(&format!("\"shards_up\":{want}")) {
            return;
        }
        assert!(Instant::now() < deadline, "shards never came up: {m}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn two_shard_deployment_serves_50_tenants_survives_a_kill_and_drains() {
    let dir0 = tmp_dir("shard0");
    let dir1 = tmp_dir("shard1");
    let (mut backend0, addr0) = spawn_backend(0, 2, &dir0);
    let (mut backend1, addr1) = spawn_backend(1, 2, &dir1);
    let (mut router, router_addr) = spawn_router(&[addr0, addr1]);

    let mut admin = Client::connect(router_addr);
    wait_until_shards_up(&mut admin, 2);

    // 50 tenants of mixed traffic through concurrent client
    // connections — the workload never names a shard.
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(router_addr);
                for i in (w * TENANTS / THREADS)..((w + 1) * TENANTS / THREADS) {
                    let t = tenant_name(i);
                    let r = c.request(&format!(
                        "{{\"op\":\"register\",\"tenant\":\"{t}\",\"secret_label\":\"e2e-{t}\"}}"
                    ));
                    assert!(r.contains("\"ok\":true"), "register {t}: {r}");
                    let r = c.request(&format!(
                        "{{\"op\":\"embed\",\"tenant\":\"{t}\",\"z\":19,\"counts\":{}}}",
                        counts_json(40)
                    ));
                    assert!(r.contains("chosen_pairs"), "embed {t}: {r}");
                    let r = c.request(&format!(
                        "{{\"op\":\"detect\",\"tenant\":\"{t}\",\"t\":2,\"k\":1,\"counts\":{}}}",
                        counts_json(40)
                    ));
                    assert!(r.contains("\"ok\":true"), "detect {t}: {r}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("tenant workload failed");
    }

    // Aggregated metrics see the whole fleet.
    let m = admin.request(r#"{"op":"metrics"}"#);
    assert!(m.contains(&format!("\"tenants\":{TENANTS}")), "{m}");
    assert!(m.contains("\"scheme\":\"jump\""), "{m}");
    assert!(m.contains("\"shard\":\"0/2\""), "{m}");
    assert!(m.contains("\"shard\":\"1/2\""), "{m}");

    // Kill shard 1 dead (SIGKILL — no drain). Errors must be scoped to
    // its tenants; shard 0 keeps serving.
    backend1.kill().expect("kill backend 1");
    backend1.wait().expect("reap backend 1");
    let on_shard = |s: usize| {
        (0..TENANTS)
            .map(tenant_name)
            .filter(move |t| tenant_shard(t, 2) == s)
    };
    let victim = on_shard(1).next().expect("some tenant on shard 1");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = admin.request(&format!(
            "{{\"op\":\"detect\",\"tenant\":\"{victim}\",\"t\":2,\"k\":1,\"counts\":{}}}",
            counts_json(40)
        ));
        if r.contains("\"ok\":false") {
            assert!(
                r.contains("shard 1") || r.contains("unavailable") || r.contains("connection lost"),
                "unexpected error shape: {r}"
            );
            break;
        }
        assert!(Instant::now() < deadline, "router never noticed the kill");
        std::thread::sleep(Duration::from_millis(50));
    }
    for t in on_shard(0).take(5) {
        let r = admin.request(&format!(
            "{{\"op\":\"detect\",\"tenant\":\"{t}\",\"t\":2,\"k\":1,\"counts\":{}}}",
            counts_json(40)
        ));
        assert!(
            r.contains("\"ok\":true"),
            "surviving shard broke for {t}: {r}"
        );
    }
    for t in on_shard(1).take(5) {
        let r = admin.request(&format!(
            "{{\"op\":\"detect\",\"tenant\":\"{t}\",\"t\":2,\"k\":1,\"counts\":{}}}",
            counts_json(40)
        ));
        assert!(
            r.contains("\"ok\":false"),
            "dead shard answered for {t}: {r}"
        );
    }

    // Tier drain through the router: ack, EOF, both processes exit 0.
    let ack = admin.request(r#"{"op":"shutdown"}"#);
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    let mut rest = String::new();
    admin
        .reader
        .read_to_string(&mut rest)
        .expect("drain to EOF");
    assert!(rest.is_empty(), "data after shutdown ack: {rest}");
    let status = router.wait().expect("router exit");
    assert!(status.success(), "router exited with {status}");
    let status = backend0.wait().expect("backend 0 exit");
    assert!(status.success(), "backend 0 exited with {status}");
    assert!(
        TcpStream::connect(router_addr).is_err(),
        "router port still open after drain"
    );

    // Post-mortem isolation: each data-dir verifies and holds exactly
    // the tenants that hash to its shard — including the killed one
    // (registrations were fsync'd before their responses).
    let expect0 = on_shard(0).count();
    let expect1 = on_shard(1).count();
    assert_eq!(expect0 + expect1, TENANTS);
    for (dir, expect) in [(&dir0, expect0), (&dir1, expect1)] {
        let (code, log) = run_cli(&["ledger", "verify", "--data-dir", dir]);
        assert_eq!(code, 0, "{log}");
        assert!(log.contains("ledger OK"), "{log}");
        assert!(
            log.contains(&format!("tenants: {expect}")),
            "wrong tenant count in {dir}: {log}"
        );
    }

    // Cross-check with real requests: a shard-1 tenant is unknown to
    // shard 0's store, while shard 0's own tenants still detect.
    let reqs = format!("{}/crosscheck.jsonl", std::env::temp_dir().display());
    let t0 = on_shard(0).next().unwrap();
    std::fs::write(
        &reqs,
        format!(
            "{{\"op\":\"detect\",\"tenant\":\"{victim}\",\"counts\":{c}}}\n\
             {{\"op\":\"detect\",\"tenant\":\"{t0}\",\"t\":2,\"k\":1,\"counts\":{c}}}\n",
            c = counts_json(40)
        ),
    )
    .unwrap();
    let (code, log) = run_cli(&["batch", "--input", &reqs, "--data-dir", &dir0]);
    assert_eq!(code, 1, "{log}"); // the misplaced tenant fails
    let lines: Vec<&str> = log.trim().lines().collect();
    assert!(lines[0].contains("unknown tenant"), "{log}");
    assert!(lines[1].contains("\"ok\":true"), "{log}");

    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
}

#[test]
fn sigterm_drains_the_router_but_leaves_backends_up() {
    let dir = tmp_dir("sigterm-shard0");
    let (mut backend, addr) = spawn_backend(0, 1, &dir);
    let (mut router, router_addr) = spawn_router(&[addr]);

    let mut c = Client::connect(router_addr);
    wait_until_shards_up(&mut c, 1);
    let r = c.request(r#"{"op":"register","tenant":"sig","secret_label":"sig"}"#);
    assert!(r.contains("\"ok\":true"), "{r}");

    // SIGTERM the router: graceful drain of the router tier only.
    let pid = router.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let mut rest = String::new();
    c.reader.read_to_string(&mut rest).expect("router closes");
    let status = router.wait().expect("router exit");
    assert!(status.success(), "router exited with {status} on SIGTERM");

    // The backend is untouched and still serves directly.
    let mut direct = Client::connect(addr);
    let r = direct.request(r#"{"op":"metrics"}"#);
    assert!(r.contains("\"tenants\":1"), "backend lost state: {r}");
    let ack = direct.request(r#"{"op":"shutdown"}"#);
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    let status = backend.wait().expect("backend exit");
    assert!(status.success(), "backend exited with {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
