//! Multi-process quota end-to-end: the real `freqywm router` binary in
//! front of two real `freqywm serve --data-dir` shards, 50 tenants.
//!
//! Acceptance (the tentpole's contract):
//!  * a greedy tenant driving 10× its embed budget gets typed
//!    `quota_exhausted` refusals with a retry-after hint, while the 49
//!    co-tenants complete with zero errors and a bounded p99;
//!  * the refusals are visible everywhere an operator looks: the
//!    `quota` op, the router's aggregated `metrics` totals, the
//!    `GET /metrics` Prometheus scrape and `freqywm top --once`;
//!  * budgets AND the consumed window survive a SIGKILL + restart of
//!    the shard, and raising the budget live unblocks the tenant.
#![cfg(unix)]

use freqywm_shard::tenant_shard;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TENANTS: usize = 49;
const THREADS: usize = 7;
const GREEDY: &str = "qt-greedy";
const BUDGET: usize = 4;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed mid-request");
        resp.trim_end().to_string()
    }
}

fn counts_json(n: usize) -> String {
    let entries: Vec<String> = (0..n)
        .map(|i| format!("[\"tok{i:02}\",{}]", 2_000 / (i + 1) + 3 * (n - i)))
        .collect();
    format!("[{}]", entries.join(","))
}

fn read_announcements(child: &mut Child, want_metrics: bool) -> (SocketAddr, Option<SocketAddr>) {
    let stdout = child.stdout.take().expect("captured stdout");
    let mut reader = BufReader::new(stdout);
    let (mut addr, mut metrics) = (None, None);
    for _ in 0..30 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read announcement") == 0 {
            break;
        }
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            addr = Some(rest.parse().expect("parse bound address"));
        }
        if let Some(rest) = line.trim().strip_prefix("metrics on ") {
            metrics = Some(rest.parse().expect("parse metrics address"));
        }
        if addr.is_some() && (!want_metrics || metrics.is_some()) {
            break;
        }
    }
    let addr = addr.expect("no `listening on` announcement");
    assert!(
        !want_metrics || metrics.is_some(),
        "no `metrics on` announcement"
    );
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (addr, metrics)
}

/// A durable shard with a scrape port and fast retention sampling (so
/// `top` has rates to render).
fn spawn_shard(shard: usize, data_dir: &str) -> (Child, SocketAddr, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--retain-snapshots",
            "64",
            "--retain-interval-ms",
            "100",
            "--data-dir",
            data_dir,
            "--shard-id",
            &format!("{shard}/2"),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm serve shard");
    let (addr, metrics) = read_announcements(&mut child, true);
    (child, addr, metrics.expect("shard metrics addr"))
}

fn spawn_router(shard_addrs: &[SocketAddr]) -> (Child, SocketAddr) {
    let mut args = vec![
        "router".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
    ];
    for a in shard_addrs {
        args.push("--shard".to_string());
        args.push(a.to_string());
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm router");
    let (addr, _) = read_announcements(&mut child, false);
    (child, addr)
}

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(args)
        .output()
        .expect("run freqywm");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn tmp_dir(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("freqywm-quota-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p.to_string_lossy().into_owned()
}

fn tenant_name(i: usize) -> String {
    format!("qt-{i:03}")
}

fn wait_until_shards_up(c: &mut Client, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let m = c.request(r#"{"op":"metrics"}"#);
        if m.contains(&format!("\"shards_up\":{want}")) {
            return;
        }
        assert!(Instant::now() < deadline, "shards never came up: {m}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn greedy_tenant_is_refused_while_co_tenants_run_clean_and_budgets_survive_sigkill() {
    let dirs = [tmp_dir("shard0"), tmp_dir("shard1")];
    let (child0, addr0, metrics0) = spawn_shard(0, &dirs[0]);
    let (child1, addr1, metrics1) = spawn_shard(1, &dirs[1]);
    let mut shards = [(child0, addr0, metrics0), (child1, addr1, metrics1)];
    let (mut router, router_addr) = spawn_router(&[addr0, addr1]);

    let mut admin = Client::connect(router_addr);
    wait_until_shards_up(&mut admin, 2);

    // Onboard the greedy tenant with an explicit, tiny embed budget on
    // a long window (nothing rotates out mid-test). The 49 co-tenants
    // keep the engine default (unlimited).
    let r = admin.request(&format!(
        "{{\"op\":\"register\",\"tenant\":\"{GREEDY}\",\"secret_label\":\"quota-{GREEDY}\"}}"
    ));
    assert!(r.contains("\"ok\":true"), "register greedy: {r}");
    let r = admin.request(&format!(
        "{{\"op\":\"quota\",\"tenant\":\"{GREEDY}\",\"embed\":{BUDGET},\"window_ms\":600000}}"
    ));
    assert!(
        r.contains("\"set\":true") && r.contains("\"source\":\"explicit\""),
        "set quota: {r}"
    );

    // Greedy drives 10× its budget serially while the co-tenant
    // workload runs concurrently on other connections.
    let greedy = std::thread::spawn(move || {
        let mut c = Client::connect(router_addr);
        let (mut admitted, mut refused) = (0usize, 0usize);
        for _ in 0..(10 * BUDGET) {
            let r = c.request(&format!(
                "{{\"op\":\"embed\",\"tenant\":\"{GREEDY}\",\"z\":19,\"counts\":{}}}",
                counts_json(40)
            ));
            if r.contains("\"ok\":true") {
                admitted += 1;
            } else {
                assert!(
                    r.contains("\"error_kind\":\"quota_exhausted\"")
                        && r.contains("\"op_class\":\"embed\"")
                        && r.contains("\"retry_after_ms\":"),
                    "refusal must be typed: {r}"
                );
                refused += 1;
            }
        }
        (admitted, refused)
    });
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(router_addr);
                let mut durations = Vec::new();
                for i in (w * TENANTS / THREADS)..((w + 1) * TENANTS / THREADS) {
                    let t = tenant_name(i);
                    let started = Instant::now();
                    let r = c.request(&format!(
                        "{{\"op\":\"register\",\"tenant\":\"{t}\",\"secret_label\":\"quota-{t}\"}}"
                    ));
                    assert!(r.contains("\"ok\":true"), "register {t}: {r}");
                    let r = c.request(&format!(
                        "{{\"op\":\"embed\",\"tenant\":\"{t}\",\"z\":19,\"counts\":{}}}",
                        counts_json(40)
                    ));
                    assert!(r.contains("chosen_pairs"), "embed {t}: {r}");
                    let r = c.request(&format!(
                        "{{\"op\":\"detect\",\"tenant\":\"{t}\",\"t\":2,\"k\":1,\"counts\":{}}}",
                        counts_json(40)
                    ));
                    assert!(r.contains("\"ok\":true"), "detect {t}: {r}");
                    durations.push(started.elapsed());
                }
                durations
            })
        })
        .collect();
    let (admitted, refused) = greedy.join().expect("greedy workload failed");
    let mut durations: Vec<Duration> = Vec::new();
    for w in workers {
        // Any co-tenant error already panicked inside the thread: the
        // quota tier must be invisible to tenants within budget.
        durations.extend(w.join().expect("co-tenant hit an error"));
    }
    assert_eq!(admitted, BUDGET, "exactly the budget is admitted");
    assert_eq!(refused, 10 * BUDGET - BUDGET);
    durations.sort();
    let p99 = durations[(durations.len() * 99 / 100).min(durations.len() - 1)];
    assert!(
        p99 < Duration::from_secs(10),
        "co-tenant p99 blew up under a greedy neighbor: {p99:?}"
    );

    // The `quota` op reports consumption and refusals for the tenant.
    let r = admin.request(&format!("{{\"op\":\"quota\",\"tenant\":\"{GREEDY}\"}}"));
    assert!(
        r.contains(&format!("\"budgets\":{{\"embed\":{BUDGET}")),
        "{r}"
    );
    assert!(r.contains(&format!("\"used\":{{\"embed\":{BUDGET}")), "{r}");
    assert!(r.contains(&format!("\"refused\":{refused}")), "{r}");

    // The router's aggregated totals carry the quota pressure.
    let m = admin.request(r#"{"op":"metrics"}"#);
    assert!(m.contains(&format!("\"quota_refused\":{refused}")), "{m}");

    // The Prometheus scrape on the shard that owns the greedy tenant
    // exposes the refusals, parser-validated.
    let greedy_shard = tenant_shard(GREEDY, 2);
    let (code, prom) = run_cli(&[
        "metrics",
        "--connect",
        &shards[greedy_shard].2.to_string(),
        "--prom",
        "--check",
    ]);
    assert_eq!(code, 0, "scrape failed: {prom}");
    assert!(prom.contains("# exposition OK"), "{prom}");
    assert!(
        prom.contains(&format!("freqywm_quota_refused_total {refused}")),
        "{prom}"
    );
    assert!(
        prom.contains(&format!(
            "freqywm_tenant_quota_refused_total{{tenant=\"{GREEDY}\"}} {refused}"
        )),
        "{prom}"
    );

    // `freqywm top --once`: the refus/s column exists and the greedy
    // tenant's refusal count shows in the tenant panel.
    std::thread::sleep(Duration::from_millis(300));
    let (code, frame) = run_cli(&["top", "--connect", &router_addr.to_string(), "--once"]);
    assert_eq!(code, 0, "top failed: {frame}");
    assert!(frame.contains("refus/s"), "{frame}");
    let greedy_row = frame
        .lines()
        .find(|l| l.contains(GREEDY))
        .unwrap_or_else(|| panic!("no tenant row for {GREEDY}:\n{frame}"));
    assert!(greedy_row.contains(&refused.to_string()), "{greedy_row}");

    // SIGKILL the greedy tenant's shard — no drain, no checkpoint on
    // exit — and restart it on the same data-dir. The explicit budget
    // (SetQuota) and the consumed window (QuotaCheckpoint) must both
    // come back from the replayed log: a crash is not a budget reset.
    shards[greedy_shard].0.kill().expect("SIGKILL shard");
    shards[greedy_shard].0.wait().expect("reap shard");
    let (revived, revived_addr, _revived_metrics) = spawn_shard(greedy_shard, &dirs[greedy_shard]);
    shards[greedy_shard].0 = revived;
    let mut direct = Client::connect(revived_addr);
    let r = direct.request(&format!("{{\"op\":\"quota\",\"tenant\":\"{GREEDY}\"}}"));
    assert!(
        r.contains("\"source\":\"explicit\"")
            && r.contains(&format!("\"budgets\":{{\"embed\":{BUDGET}"))
            && r.contains(&format!("\"used\":{{\"embed\":{BUDGET}")),
        "quota state lost across SIGKILL: {r}"
    );
    let r = direct.request(&format!(
        "{{\"op\":\"embed\",\"tenant\":\"{GREEDY}\",\"z\":19,\"counts\":{}}}",
        counts_json(40)
    ));
    assert!(
        r.contains("\"error_kind\":\"quota_exhausted\""),
        "budget must still be spent after restart: {r}"
    );

    // The runbook move, via the one-shot subcommand: raise the budget
    // live; the tenant unblocks immediately.
    let (code, out) = run_cli(&[
        "quota",
        "--connect",
        &revived_addr.to_string(),
        "--tenant",
        GREEDY,
        "--embed",
        "100",
        "--window-ms",
        "600000",
    ]);
    assert_eq!(code, 0, "quota subcommand failed: {out}");
    assert!(out.contains("\"set\":true"), "{out}");
    let r = direct.request(&format!(
        "{{\"op\":\"embed\",\"tenant\":\"{GREEDY}\",\"z\":19,\"counts\":{}}}",
        counts_json(40)
    ));
    assert!(r.contains("\"ok\":true"), "raised budget must admit: {r}");

    router.kill().expect("kill router");
    router.wait().expect("reap router");
    for (mut child, _, _) in shards {
        child.kill().expect("kill shard");
        child.wait().expect("reap shard");
    }
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
