//! Loopback end-to-end: spawn the real `freqywm serve --listen
//! 127.0.0.1:0` binary, drive ~100 concurrent clients through
//! register/embed/detect/dispute, and assert a clean drain on
//! shutdown (this is the CI e2e job's test).
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const CLIENTS: usize = 100;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed mid-request");
        resp.trim_end().to_string()
    }
}

fn counts_json(n: usize) -> String {
    let entries: Vec<String> = (0..n)
        .map(|i| format!("[\"tok{i:02}\",{}]", 2_000 / (i + 1) + 3 * (n - i)))
        .collect();
    format!("[{}]", entries.join(","))
}

fn spawn_server() -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "4096",
            "--max-conns",
            "256",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm serve");
    let stdout = child.stdout.take().expect("captured stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read announcement");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

#[test]
fn loopback_e2e_hundred_clients_clean_drain() {
    let (mut child, addr) = spawn_server();

    // ~100 concurrent clients, each a full tenant lifecycle.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let r = c.request(&format!(
                    "{{\"op\":\"register\",\"tenant\":\"t{i:03}\",\"secret_label\":\"e2e-{i}\"}}"
                ));
                assert!(r.contains("\"ok\":true"), "register {i}: {r}");
                let r = c.request(&format!(
                    "{{\"op\":\"embed\",\"tenant\":\"t{i:03}\",\"z\":19,\"counts\":{}}}",
                    counts_json(60)
                ));
                assert!(r.contains("chosen_pairs"), "embed {i}: {r}");
                let r = c.request(&format!(
                    "{{\"op\":\"detect\",\"tenant\":\"t{i:03}\",\"t\":2,\"k\":1,\"counts\":{}}}",
                    counts_json(60)
                ));
                assert!(r.contains("\"op\":\"detect\""), "detect {i}: {r}");
                assert!(r.contains("\"ok\":true"), "detect {i}: {r}");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client lifecycle failed");
    }

    // Disputes across tenants embedded by different connections.
    let mut c = Client::connect(addr);
    let r = c.request(r#"{"op":"dispute","a":"t000","b":"t001"}"#);
    assert!(r.contains("\"winner\":"), "{r}");
    let metrics = c.request(r#"{"op":"metrics"}"#);
    assert!(metrics.contains("\"accepted\":"), "{metrics}");
    assert!(metrics.contains("\"failed\":0"), "{metrics}");

    // Clean drain: shutdown acks, the connection closes, the process
    // exits successfully.
    let ack = c.request(r#"{"op":"shutdown"}"#);
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    let mut rest = String::new();
    c.reader.read_to_string(&mut rest).expect("drain to EOF");
    assert!(rest.is_empty(), "data after shutdown ack: {rest}");
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    assert!(
        TcpStream::connect(addr).is_err(),
        "port still open after drain"
    );
}
