//! Multi-process failover end-to-end: the real `freqywm router` binary
//! with two shards, each a `serve --listen --shard-id --data-dir`
//! primary paired with a `serve --follow` standby. 50 tenants are
//! onboarded, the standbys catch up, then shard 0's primary is
//! SIGKILLed under live detect traffic from 10 concurrent clients.
//!
//! Acceptance (the tentpole's contract):
//!  * the router promotes the standby and redirects traffic — the only
//!    failed requests are the ones in flight at the instant of death
//!    (≤ one per client connection, surfaced as `inflight_failed`);
//!  * after that window every request succeeds, including mutations,
//!    which now land on the promoted standby;
//!  * `ledger verify` passes on BOTH the killed primary's data-dir and
//!    the promoted standby's, with identical chain heads — zero
//!    fsynced events lost.
#![cfg(unix)]

use freqywm_shard::tenant_shard;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: usize = 50;
const THREADS: usize = 10;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed mid-request");
        resp.trim_end().to_string()
    }
}

fn counts_json(n: usize) -> String {
    let entries: Vec<String> = (0..n)
        .map(|i| format!("[\"tok{i:02}\",{}]", 2_000 / (i + 1) + 3 * (n - i)))
        .collect();
    format!("[{}]", entries.join(","))
}

/// Reads child stdout until the `listening on <addr>` line (followers
/// announce `following <primary>` first), then keeps draining in the
/// background so the child never blocks on a full pipe.
fn read_announcement(child: &mut Child) -> SocketAddr {
    let stdout = child.stdout.take().expect("captured stdout");
    let mut reader = BufReader::new(stdout);
    let mut addr = None;
    for _ in 0..10 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read announcement");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            addr = Some(rest.parse().expect("parse bound address"));
            break;
        }
    }
    let addr = addr.expect("no `listening on` announcement");
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    addr
}

fn spawn_serve(extra: &[String]) -> (Child, SocketAddr) {
    let mut args = vec![
        "serve".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--workers".to_string(),
        "2".to_string(),
        "--queue".to_string(),
        "4096".to_string(),
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm serve");
    let addr = read_announcement(&mut child);
    (child, addr)
}

fn spawn_primary(shard: usize, data_dir: &str) -> (Child, SocketAddr) {
    spawn_serve(&[
        "--data-dir".into(),
        data_dir.into(),
        "--shard-id".into(),
        format!("{shard}/2"),
    ])
}

fn spawn_standby(shard: usize, data_dir: &str, primary: SocketAddr) -> (Child, SocketAddr) {
    spawn_serve(&[
        "--data-dir".into(),
        data_dir.into(),
        "--shard-id".into(),
        format!("{shard}/2"),
        "--follow".into(),
        primary.to_string(),
    ])
}

fn spawn_router(pairs: &[(SocketAddr, SocketAddr)]) -> (Child, SocketAddr) {
    let mut args = vec![
        "router".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
    ];
    for (primary, standby) in pairs {
        args.push("--shard".to_string());
        args.push(format!("{primary},{standby}"));
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm router");
    let addr = read_announcement(&mut child);
    (child, addr)
}

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(args)
        .output()
        .expect("run freqywm");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn tmp_dir(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "freqywm-failover-e2e-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p.to_string_lossy().into_owned()
}

fn tenant_name(i: usize) -> String {
    format!("tenant-{i:03}")
}

/// Extracts `"key":<integer>` from a JSON response line.
fn json_u64(resp: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = resp.find(&pat)? + pat.len();
    let digits: String = resp[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts the `head: <hex>` line from `ledger verify` output.
fn verify_head(log: &str) -> String {
    log.lines()
        .find_map(|l| l.trim().strip_prefix("head: "))
        .unwrap_or_else(|| panic!("no head line in verify output: {log}"))
        .to_string()
}

fn wait_until_shards_up(c: &mut Client, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let m = c.request(r#"{"op":"metrics"}"#);
        if m.contains(&format!("\"shards_up\":{want}")) {
            return;
        }
        assert!(Instant::now() < deadline, "shards never came up: {m}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Waits until `standby`'s replicated log reaches `primary`'s — both
/// report `log_seq` in their metrics.
fn wait_until_caught_up(primary: SocketAddr, standby: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut p = Client::connect(primary);
    let mut s = Client::connect(standby);
    loop {
        let pm = p.request(r#"{"op":"metrics"}"#);
        let sm = s.request(r#"{"op":"metrics"}"#);
        let want = json_u64(&pm, "log_seq").expect("primary log_seq");
        let have = json_u64(&sm, "log_seq").expect("standby log_seq");
        assert!(sm.contains("\"role\":\"follower\""), "{sm}");
        if have >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "standby never caught up ({have}/{want})"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

#[test]
fn sigkilled_primary_fails_over_to_standby_with_zero_fsynced_loss() {
    let dir_p0 = tmp_dir("primary0");
    let dir_p1 = tmp_dir("primary1");
    let dir_s0 = tmp_dir("standby0");
    let dir_s1 = tmp_dir("standby1");
    let (mut primary0, p0) = spawn_primary(0, &dir_p0);
    let (mut primary1, p1) = spawn_primary(1, &dir_p1);
    let (mut standby0, s0) = spawn_standby(0, &dir_s0, p0);
    let (mut standby1, s1) = spawn_standby(1, &dir_s1, p1);
    let (mut router, router_addr) = spawn_router(&[(p0, s0), (p1, s1)]);

    let mut admin = Client::connect(router_addr);
    wait_until_shards_up(&mut admin, 2);

    // Onboard 50 tenants (register + embed) through the router.
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(router_addr);
                for i in (w * TENANTS / THREADS)..((w + 1) * TENANTS / THREADS) {
                    let t = tenant_name(i);
                    let r = c.request(&format!(
                        "{{\"op\":\"register\",\"tenant\":\"{t}\",\"secret_label\":\"fo-{t}\"}}"
                    ));
                    assert!(r.contains("\"ok\":true"), "register {t}: {r}");
                    let r = c.request(&format!(
                        "{{\"op\":\"embed\",\"tenant\":\"{t}\",\"z\":19,\"counts\":{}}}",
                        counts_json(40)
                    ));
                    assert!(r.contains("chosen_pairs"), "embed {t}: {r}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("onboarding failed");
    }

    // Every registration is replicated before the kill: the heads we
    // compare post-mortem must cover the full fsynced history.
    wait_until_caught_up(p0, s0);
    wait_until_caught_up(p1, s1);

    // Live detect traffic from 10 clients; the primary of shard 0 is
    // SIGKILLed mid-run. Each client records per-request outcomes.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(router_addr);
                let mut outcomes: Vec<bool> = Vec::new();
                let mut errors: Vec<String> = Vec::new();
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let t = tenant_name(i % TENANTS);
                    i += 7;
                    let r = c.request(&format!(
                        "{{\"op\":\"detect\",\"tenant\":\"{t}\",\"t\":2,\"k\":1,\"counts\":{}}}",
                        counts_json(40)
                    ));
                    let ok = r.contains("\"ok\":true");
                    if !ok {
                        errors.push(r);
                    }
                    outcomes.push(ok);
                }
                (outcomes, errors)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(700));
    primary0.kill().expect("SIGKILL primary 0"); // no drain, no warning
    let kill_at = Instant::now();
    primary0.wait().expect("reap primary 0");
    // Let the failover complete and post-window traffic accumulate.
    std::thread::sleep(Duration::from_secs(4));
    stop.store(true, Ordering::Relaxed);

    let mut total_requests = 0usize;
    let mut total_errors = 0usize;
    for (w, worker) in workers.into_iter().enumerate() {
        let (outcomes, errors) = worker.join().expect("traffic worker panicked");
        assert!(
            outcomes.len() >= 20,
            "worker {w} made only {} requests",
            outcomes.len()
        );
        total_requests += outcomes.len();
        total_errors += errors.len();
        // Zero failures after the in-flight window: once the shard
        // failed over, this client never errors again — its tail is
        // all successes.
        let last_err = outcomes.iter().rposition(|ok| !ok);
        if let Some(pos) = last_err {
            assert!(
                outcomes[pos + 1..].iter().all(|&ok| ok),
                "worker {w}: error after recovery: {errors:?}"
            );
            assert!(
                outcomes.len() - pos > 1,
                "worker {w} never recovered: {errors:?}"
            );
        }
        // FIFO protocol: one request in flight per connection, so at
        // most one loss per client.
        assert!(
            errors.len() <= 1,
            "worker {w} lost more than its in-flight request: {errors:?}"
        );
    }
    // "Errors ≤ in-flight at kill time": bounded by the number of
    // client connections…
    assert!(
        total_errors <= THREADS,
        "{total_errors} errors across {total_requests} requests"
    );
    // …and every one of them is accounted for by the router's own
    // in-flight-loss counter.
    let m = admin.request(r#"{"op":"metrics"}"#);
    let inflight_failed = json_u64(&m, "inflight_failed").expect("router metrics");
    assert!(
        total_errors as u64 <= inflight_failed && inflight_failed <= THREADS as u64,
        "client errors {total_errors} vs inflight_failed {inflight_failed}: {m}"
    );
    // The shard map records the promotion.
    assert!(m.contains("\"failed_over\":true"), "{m}");
    eprintln!(
        "failover: {total_errors} errors / {total_requests} requests, \
         inflight_failed={inflight_failed}, window={:?}",
        kill_at.elapsed()
    );

    // Killed-shard tenants keep serving (now from the standby).
    let victim = (0..TENANTS)
        .map(tenant_name)
        .find(|t| tenant_shard(t, 2) == 0)
        .expect("some tenant on shard 0");
    let r = admin.request(&format!(
        "{{\"op\":\"detect\",\"tenant\":\"{victim}\",\"t\":2,\"k\":1,\"counts\":{}}}",
        counts_json(40)
    ));
    assert!(r.contains("\"ok\":true"), "post-failover detect: {r}");

    // Post-mortem BEFORE any new writes: both the killed primary's
    // data-dir and the promoted standby's verify clean, and their
    // chain heads are identical — the standby lost nothing that was
    // ever fsynced. The verify outputs are kept as CI artifacts.
    let artifact_dir =
        std::env::var("FREQYWM_ARTIFACT_DIR").unwrap_or_else(|_| tmp_dir("artifacts"));
    std::fs::create_dir_all(&artifact_dir).expect("artifact dir");
    let (code, log_p) = run_cli(&["ledger", "verify", "--data-dir", &dir_p0]);
    assert_eq!(code, 0, "killed primary's ledger: {log_p}");
    assert!(log_p.contains("ledger OK"), "{log_p}");
    let (code, log_s) = run_cli(&["ledger", "verify", "--data-dir", &dir_s0]);
    assert_eq!(code, 0, "promoted standby's ledger: {log_s}");
    assert!(log_s.contains("ledger OK"), "{log_s}");
    std::fs::write(
        format!("{artifact_dir}/ledger-verify-killed-primary0.txt"),
        &log_p,
    )
    .unwrap();
    std::fs::write(
        format!("{artifact_dir}/ledger-verify-promoted-standby0.txt"),
        &log_s,
    )
    .unwrap();
    assert_eq!(
        verify_head(&log_p),
        verify_head(&log_s),
        "promoted standby must sit on the killed primary's chain head\n\
         primary: {log_p}\nstandby: {log_s}"
    );

    // The promoted standby accepts mutations through the router.
    let fresh = (0..)
        .map(|i| format!("post-failover-{i}"))
        .find(|t| tenant_shard(t, 2) == 0)
        .unwrap();
    let r = admin.request(&format!(
        "{{\"op\":\"register\",\"tenant\":\"{fresh}\",\"secret_label\":\"pf\"}}"
    ));
    assert!(
        r.contains("\"ok\":true"),
        "register on promoted standby: {r}"
    );

    // Tier drain: the fan-out reaches the promoted standby and the
    // surviving primary; both ack and exit cleanly.
    let ack = admin.request(r#"{"op":"shutdown"}"#);
    assert!(ack.contains("\"ok\":true"), "{ack}");
    let mut rest = String::new();
    admin
        .reader
        .read_to_string(&mut rest)
        .expect("drain to EOF");
    assert!(router.wait().expect("router exit").success());
    assert!(standby0.wait().expect("standby 0 exit").success());
    assert!(primary1.wait().expect("primary 1 exit").success());

    // Standby 1 still follows its (now gone) primary; shut it down
    // directly — a follower accepts the shutdown op.
    let mut direct = Client::connect(s1);
    let ack = direct.request(r#"{"op":"shutdown"}"#);
    assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
    drop(direct);
    assert!(standby1.wait().expect("standby 1 exit").success());

    // The promoted standby's data-dir carries the post-failover write
    // on top of the inherited chain.
    let (code, log) = run_cli(&["ledger", "verify", "--data-dir", &dir_s0]);
    assert_eq!(code, 0, "{log}");
    assert!(log.contains("ledger OK"), "{log}");

    for dir in [&dir_p0, &dir_p1, &dir_s0, &dir_s1] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
