//! Multi-process observability end-to-end: the real `freqywm router`
//! binary in front of two primary/standby pairs, all with
//! `--metrics-listen` HTTP scrape ports and fast retention sampling.
//!
//! Acceptance (the tentpole's contract):
//!  * `GET /metrics` on a shard AND on the router returns an
//!    exposition the in-repo parser validates (`freqywm metrics
//!    --prom --check` exits 0), with the router's per-shard role,
//!    log_seq, replication lag and RTT families present;
//!  * the `history` op fans out through the router into per-shard
//!    series with derived rates;
//!  * `freqywm top --once` renders one row per shard with role, qps,
//!    p99 and replication lag, and a second frame under live traffic
//!    shows the history-derived counters moving.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: usize = 12;
const THREADS: usize = 4;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed mid-request");
        resp.trim_end().to_string()
    }
}

fn counts_json(n: usize) -> String {
    let entries: Vec<String> = (0..n)
        .map(|i| format!("[\"tok{i:02}\",{}]", 2_000 / (i + 1) + 3 * (n - i)))
        .collect();
    format!("[{}]", entries.join(","))
}

/// Reads child stdout until both the `listening on <addr>` and
/// `metrics on <addr>` announcements arrive (the router interleaves
/// its shard-map dump between them), then drains in the background.
fn read_announcements(child: &mut Child, want_metrics: bool) -> (SocketAddr, Option<SocketAddr>) {
    let stdout = child.stdout.take().expect("captured stdout");
    let mut reader = BufReader::new(stdout);
    let (mut addr, mut metrics) = (None, None);
    for _ in 0..30 {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read announcement") == 0 {
            break;
        }
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            addr = Some(rest.parse().expect("parse bound address"));
        }
        if let Some(rest) = line.trim().strip_prefix("metrics on ") {
            metrics = Some(rest.parse().expect("parse metrics address"));
        }
        if addr.is_some() && (!want_metrics || metrics.is_some()) {
            break;
        }
    }
    let addr = addr.expect("no `listening on` announcement");
    assert!(
        !want_metrics || metrics.is_some(),
        "no `metrics on` announcement"
    );
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (addr, metrics)
}

fn spawn_freqywm(args: &[String], want_metrics: bool) -> (Child, SocketAddr, Option<SocketAddr>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn freqywm");
    let (addr, metrics) = read_announcements(&mut child, want_metrics);
    (child, addr, metrics)
}

/// A shard engine with fast retention sampling and a scrape port.
fn spawn_serve(
    shard: usize,
    follow: Option<SocketAddr>,
) -> (Child, SocketAddr, Option<SocketAddr>) {
    let mut args: Vec<String> = [
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--metrics-listen",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--retain-snapshots",
        "64",
        "--retain-interval-ms",
        "100",
        "--shard-id",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.push(format!("{shard}/2"));
    if let Some(primary) = follow {
        args.push("--follow".into());
        args.push(primary.to_string());
    }
    spawn_freqywm(&args, true)
}

fn spawn_router(pairs: &[(SocketAddr, SocketAddr)]) -> (Child, SocketAddr, SocketAddr) {
    let mut args: Vec<String> = [
        "router",
        "--listen",
        "127.0.0.1:0",
        "--metrics-listen",
        "127.0.0.1:0",
        "--probe-interval",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for (primary, standby) in pairs {
        args.push("--shard".into());
        args.push(format!("{primary},{standby}"));
    }
    let (child, addr, metrics) = spawn_freqywm(&args, true);
    (child, addr, metrics.expect("router metrics addr"))
}

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_freqywm"))
        .args(args)
        .output()
        .expect("run freqywm");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn tenant_name(i: usize) -> String {
    format!("obs-tenant-{i:03}")
}

fn wait_until_shards_up(c: &mut Client, want: usize) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let m = c.request(r#"{"op":"metrics"}"#);
        if m.contains(&format!("\"shards_up\":{want}")) {
            return;
        }
        assert!(Instant::now() < deadline, "shards never came up: {m}");
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Splits the `freqywm top` row for `addr` into its whitespace
/// columns: shard, role, health, qps, refus/s, p50, p99, wait%,
/// hit%, log_seq, lag, addr.
fn top_row(frame: &str, addr: SocketAddr) -> Vec<String> {
    frame
        .lines()
        .find(|l| l.contains(&addr.to_string()) && !l.starts_with("tier:"))
        .unwrap_or_else(|| panic!("no row for {addr} in frame:\n{frame}"))
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

#[test]
fn scrape_history_and_top_against_a_replicated_tier() {
    let (mut primary0, p0, p0_metrics) = spawn_serve(0, None);
    let (mut primary1, p1, _p1_metrics) = spawn_serve(1, None);
    let (mut standby0, s0, _s0m) = spawn_serve(0, Some(p0));
    let (mut standby1, s1, _s1m) = spawn_serve(1, Some(p1));
    let (mut router, router_addr, router_metrics) = spawn_router(&[(p0, s0), (p1, s1)]);
    let p0_metrics = p0_metrics.expect("shard 0 metrics addr");

    let mut admin = Client::connect(router_addr);
    wait_until_shards_up(&mut admin, 2);

    // Onboard tenants through the router (register + embed touches
    // both shards and advances each primary's log_seq).
    for i in 0..TENANTS {
        let t = tenant_name(i);
        let r = admin.request(&format!(
            "{{\"op\":\"register\",\"tenant\":\"{t}\",\"secret_label\":\"obs-{t}\"}}"
        ));
        assert!(r.contains("\"ok\":true"), "register {t}: {r}");
        let r = admin.request(&format!(
            "{{\"op\":\"embed\",\"tenant\":\"{t}\",\"z\":19,\"counts\":{}}}",
            counts_json(40)
        ));
        assert!(r.contains("chosen_pairs"), "embed {t}: {r}");
    }

    // Live detect traffic while the dashboard frames are captured.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(router_addr);
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let t = tenant_name(i % TENANTS);
                    i += 5;
                    let r = c.request(&format!(
                        "{{\"op\":\"detect\",\"tenant\":\"{t}\",\"t\":2,\"k\":1,\"counts\":{}}}",
                        counts_json(40)
                    ));
                    assert!(r.contains("\"ok\":true"), "detect {t}: {r}");
                }
            })
        })
        .collect();

    // Let the standby prober (1s interval) and the 100ms retention
    // samplers build up state before the first frame.
    std::thread::sleep(Duration::from_millis(2_500));

    let artifact_dir = std::env::var("FREQYWM_ARTIFACT_DIR").unwrap_or_else(|_| {
        let mut p = std::env::temp_dir();
        p.push(format!("freqywm-top-e2e-{}", std::process::id()));
        p.to_string_lossy().into_owned()
    });
    std::fs::create_dir_all(&artifact_dir).expect("artifact dir");

    // Scrape a shard's exposition and validate it with the parser.
    let (code, shard_prom) = run_cli(&[
        "metrics",
        "--connect",
        &p0_metrics.to_string(),
        "--prom",
        "--check",
    ]);
    assert_eq!(code, 0, "shard scrape failed: {shard_prom}");
    assert!(shard_prom.contains("# exposition OK"), "{shard_prom}");
    assert!(
        shard_prom.contains("freqywm_jobs_completed_total"),
        "{shard_prom}"
    );
    assert!(
        shard_prom.contains("freqywm_request_duration_seconds_bucket"),
        "{shard_prom}"
    );

    // Scrape the router's exposition: per-shard roles, log sequences,
    // replication lag and RTT histograms, parser-validated.
    let (code, router_prom) = run_cli(&[
        "metrics",
        "--connect",
        &router_metrics.to_string(),
        "--prom",
        "--check",
    ]);
    assert_eq!(code, 0, "router scrape failed: {router_prom}");
    assert!(router_prom.contains("# exposition OK"), "{router_prom}");
    for family in [
        "freqywm_router_shard_info",
        "freqywm_router_shard_log_seq",
        "freqywm_router_shard_standby_log_seq",
        "freqywm_router_shard_replication_lag",
        "freqywm_router_shard_rtt_seconds_bucket",
    ] {
        assert!(
            router_prom.contains(family),
            "{family} missing:\n{router_prom}"
        );
    }
    assert!(
        router_prom.contains("role=\"primary\""),
        "probed roles missing:\n{router_prom}"
    );
    std::fs::write(format!("{artifact_dir}/scrape-shard0.prom"), &shard_prom).unwrap();
    std::fs::write(format!("{artifact_dir}/scrape-router.prom"), &router_prom).unwrap();

    // The JSON `metrics` op (one-shot client) reports per-pair
    // replication lag in the shard map.
    let (code, metrics_json) = run_cli(&["metrics", "--connect", &router_addr.to_string()]);
    assert_eq!(code, 0, "{metrics_json}");
    assert!(metrics_json.contains("\"repl_lag\":"), "{metrics_json}");
    assert!(
        !metrics_json.contains("\"repl_lag\":null"),
        "lag unknown after probe warmup: {metrics_json}"
    );

    // The history op fans out into per-shard series with window rates.
    let hist = admin.request(r#"{"op":"history","last":4}"#);
    assert!(hist.contains("\"router\":true"), "{hist}");
    assert!(hist.contains("\"shard_index\":0"), "{hist}");
    assert!(hist.contains("\"shard_index\":1"), "{hist}");
    assert!(hist.contains("\"completed_per_s\":"), "{hist}");

    // Two dashboard frames under live traffic.
    let (code, frame1) = run_cli(&["top", "--connect", &router_addr.to_string(), "--once"]);
    assert_eq!(code, 0, "top frame 1 failed: {frame1}");
    std::thread::sleep(Duration::from_millis(800));
    let (code, frame2) = run_cli(&["top", "--connect", &router_addr.to_string(), "--once"]);
    assert_eq!(code, 0, "top frame 2 failed: {frame2}");
    std::fs::write(format!("{artifact_dir}/top-frame-1.txt"), &frame1).unwrap();
    std::fs::write(format!("{artifact_dir}/top-frame-2.txt"), &frame2).unwrap();

    assert!(frame1.contains("tier: 2 shards (2 up)"), "{frame1}");
    for (frame, label) in [(&frame1, "frame 1"), (&frame2, "frame 2")] {
        for addr in [p0, p1] {
            let row = top_row(frame, addr);
            assert_eq!(row[1], "primary", "{label} role: {row:?}");
            assert_eq!(row[2], "ok", "{label} health: {row:?}");
            let qps: f64 = row[3]
                .parse()
                .unwrap_or_else(|_| panic!("{label} qps not numeric: {row:?}"));
            assert!(qps > 0.0, "{label} idle under live traffic: {row:?}");
            row[4]
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("{label} refus/s not numeric: {row:?}"));
            row[6]
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{label} p99 not numeric: {row:?}"));
            row[9]
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{label} log_seq not numeric: {row:?}"));
            row[10]
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{label} repl lag not numeric: {row:?}"));
        }
    }
    assert!(frame1.contains("top tenants by ops:"), "{frame1}");
    assert!(frame1.contains(&tenant_name(0)), "{frame1}");
    // Live traffic between the frames: the history-derived view moved
    // (completed totals are strictly increasing counters).
    let completed = |frame: &str| -> u64 {
        let tier = frame
            .lines()
            .find(|l| l.starts_with("tier:"))
            .expect("tier line");
        let at = tier.find("completed ").expect("completed field") + "completed ".len();
        tier[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("completed count")
    };
    assert!(
        completed(&frame2) > completed(&frame1),
        "tier counters did not move between frames:\n{frame1}\n{frame2}"
    );

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("traffic worker panicked");
    }

    // Tier drain: router + primaries ack and exit; the standbys are
    // not routed to (no failover happened) and get direct shutdowns.
    let ack = admin.request(r#"{"op":"shutdown"}"#);
    assert!(ack.contains("\"ok\":true"), "{ack}");
    let mut rest = String::new();
    admin
        .reader
        .read_to_string(&mut rest)
        .expect("drain to EOF");
    assert!(router.wait().expect("router exit").success());
    assert!(primary0.wait().expect("primary 0 exit").success());
    assert!(primary1.wait().expect("primary 1 exit").success());
    for (child, addr) in [(&mut standby0, s0), (&mut standby1, s1)] {
        let mut direct = Client::connect(addr);
        let ack = direct.request(r#"{"op":"shutdown"}"#);
        assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");
        drop(direct);
        assert!(child.wait().expect("standby exit").success());
    }
}
