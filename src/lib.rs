//! # FreqyWM — Frequency Watermarking for the New Data Economy
//!
//! A Rust implementation of İşler et al., *FreqyWM: Frequency
//! Watermarking for the New Data Economy* (ICDE 2024).
//!
//! FreqyWM hides an ownership watermark inside any dataset of
//! repeating tokens by slightly modulating the appearance frequencies
//! of secretly chosen token pairs, so that each pair's frequency
//! difference vanishes modulo a secret-derived value. Knowledge of
//! that hidden relationship proves ownership; the data itself barely
//! changes (the headline configuration costs 0.0002% cosine
//! distortion) and the token ranking is preserved.
//!
//! ## Quick start
//!
//! ```
//! use freqywm::prelude::*;
//!
//! // Any repeating tokens work; here, a tiny click-stream.
//! let mut tokens = Vec::new();
//! for (domain, visits) in [("youtube.com", 1098), ("facebook.com", 980),
//!                          ("google.com", 674), ("instagram.com", 537),
//!                          ("bbc.com", 64), ("cnn.com", 53)] {
//!     tokens.extend(std::iter::repeat_with(|| Token::new(domain)).take(visits));
//! }
//! let dataset = Dataset::new(tokens);
//!
//! // Generate: budget 2%, modulo base z = 19.
//! let params = GenerationParams::default().with_budget(2.0).with_z(19);
//! let secret = Secret::from_label("doc-example"); // use Secret::generate in production
//! let (watermarked, secrets, report) =
//!     Watermarker::new(params).watermark_dataset(&dataset, secret).unwrap();
//! assert!(report.chosen_pairs >= 1);
//! assert!(report.similarity_pct >= 98.0);
//!
//! // Detect: the watermarked copy verifies, with every pair exact.
//! let detection = DetectionParams::default().with_t(0).with_k(secrets.len());
//! assert!(detect_dataset(&watermarked, &secrets, &detection).accepted);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | `WM_Generate` / `WM_Detect`, selection, multi-watermarking, dispute judge |
//! | [`data`] | tokens, histograms, datasets, generators, CSV, bucketization |
//! | [`crypto`] | SHA-256, HMAC, the pair PRF, keyed streams |
//! | [`matching`] | blossom maximum-weight matching, heuristics, knapsack |
//! | [`stats`] | similarity metrics, rank statistics, Poisson–Binomial, FFT, decomposition |
//! | [`attacks`] | guess / sampling / destroy / re-watermarking attacks |
//! | [`baselines`] | WM-OBT and WM-RVS comparators |
//! | [`ml`] | from-scratch LSTM for the accuracy experiment |
//! | [`ledger`] | hash-chained buyer-fingerprint ledger |
//! | [`service`] | multi-tenant engine: key registry, worker pool, PRF cache, JSON-lines protocol |
//! | [`net`] | non-blocking TCP front-end: hand-rolled epoll/poll reactor for `freqywm serve --listen` |
//! | [`shard`] | cross-process sharding: consistent-hash router tier over N engine shards |

pub use freqywm_attacks as attacks;
pub use freqywm_baselines as baselines;
pub use freqywm_core as core;
pub use freqywm_crypto as crypto;
pub use freqywm_data as data;
pub use freqywm_ledger as ledger;
pub use freqywm_matching as matching;
pub use freqywm_ml as ml;
pub use freqywm_net as net;
pub use freqywm_service as service;
pub use freqywm_shard as shard;
pub use freqywm_stats as stats;

/// The most common imports in one place.
pub mod prelude {
    pub use freqywm_core::detect::{detect_dataset, detect_histogram, DetectionOutcome};
    pub use freqywm_core::generate::{GenerationOutput, GenerationReport, Watermarker};
    pub use freqywm_core::judge::{judge_dispute, Claim, Verdict};
    pub use freqywm_core::multiwm::{multi_watermark, MultiWatermark};
    pub use freqywm_core::params::{
        DetectionParams, DetectionRule, GenerationParams, Selection, WeightScheme,
    };
    pub use freqywm_core::secret::SecretList;
    pub use freqywm_crypto::prf::Secret;
    pub use freqywm_data::dataset::{Dataset, Table};
    pub use freqywm_data::histogram::Histogram;
    pub use freqywm_data::token::Token;
    pub use freqywm_service::{
        Engine, EngineConfig, JobData, JobOutput, JobPayload, JobSpec, JobState,
    };
}
