//! Generators: the seedable [`StdRng`] and the OS entropy source
//! [`OsRng`].

use crate::{CryptoRng, RngCore, SeedableRng};
use std::io::Read;

/// SplitMix64 — used for seed expansion and as the `seed_from_u64`
/// stream initialiser. Small state, passes BigCrush when used for seeding.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The standard seedable generator: xoshiro256++.
///
/// Not the same algorithm as upstream `rand`'s ChaCha12-based `StdRng`,
/// but deterministic under seed and statistically strong, which is all
/// the workspace relies on.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(s: [u64; 4]) -> Self {
        // All-zero state is a fixed point; nudge it.
        if s == [0, 0, 0, 0] {
            StdRng {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            }
        } else {
            StdRng { s }
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        StdRng::from_state(s)
    }
}

pub(crate) fn fill_bytes_via_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    let mut iter = dest.chunks_exact_mut(8);
    for chunk in &mut iter {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = iter.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        let n = rem.len();
        rem.copy_from_slice(&bytes[..n]);
    }
}

/// Operating-system entropy (reads `/dev/urandom`).
///
/// `OsRng` advertises `CryptoRng`, so there is deliberately **no**
/// deterministic fallback: if the OS entropy source cannot be read
/// (non-Unix platform, locked-down sandbox), `fill_bytes` panics
/// rather than silently handing out predictable bytes that callers
/// would use as watermarking secrets.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsRng;

impl OsRng {
    fn fill_from_os(dest: &mut [u8]) -> std::io::Result<()> {
        std::fs::File::open("/dev/urandom")?.read_exact(dest)
    }
}

impl RngCore for OsRng {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        Self::fill_from_os(dest)
            .expect("OsRng: no OS entropy source available (/dev/urandom unreadable)");
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), crate::Error> {
        Self::fill_from_os(dest).map_err(|_| crate::Error)
    }
}

impl CryptoRng for OsRng {}
