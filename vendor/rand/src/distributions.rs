//! Distributions: `Distribution`, `Uniform`, `Standard`.

use crate::{RngCore, SampleUniform};

/// A sampling distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over the half-open range `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Uniform {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform over the closed range `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Uniform {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_inclusive(rng, self.low, self.high)
        } else {
            T::sample_half_open(rng, self.low, self.high)
        }
    }
}

/// The "natural" distribution of a type: full integer range, `[0, 1)`
/// for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);
