//! Offline shim for the `rand` crate (API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the slice of the `rand` 0.8 API the
//! workspace uses: [`RngCore`] / [`CryptoRng`] / [`SeedableRng`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`rngs::OsRng`] (reads `/dev/urandom`), [`seq::SliceRandom`]
//! (`shuffle`, `choose`) and [`distributions`] (`Distribution`,
//! `Uniform`, `Standard`).
//!
//! Stream values differ from upstream `rand` (a different StdRng
//! algorithm), which is fine: every consumer in this workspace only
//! relies on determinism-under-seed and statistical uniformity, both of
//! which xoshiro256++ provides.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Error type for fallible RNG operations (never produced by the
/// generators in this shim, but part of the `RngCore` contract).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core RNG interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the u64 into the full seed, as upstream does.
        let mut sm = crate::rngs::SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let v = uniform_u128_below(rng, span);
                ((lo as i128) + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: any value works.
                    let mut b = [0u8; 16];
                    rng.fill_bytes(&mut b);
                    return i128::from_le_bytes(b) as $t;
                }
                let v = uniform_u128_below(rng, span);
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform value in `[0, bound)` without modulo bias (widening multiply).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Lemire's multiply-shift rejection method on 64 bits.
        let mut x = rng.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = rng.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        m >> 64
    } else {
        // Rare (>64-bit spans): simple rejection on the top bits.
        loop {
            let mut b = [0u8; 16];
            rng.fill_bytes(&mut b);
            let v = u128::from_le_bytes(b);
            // bound > 2^64 here, so masking to 2^127 keeps acceptance ~50%+.
            let v = v >> 1;
            if v < bound {
                return v;
            }
        }
    }
}

/// Uniform f64 in [0, 1) with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::{OsRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{CryptoRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn std_rng_is_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes_and_choose_in_range() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig, "100-element shuffle left the slice untouched");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        for _ in 0..50 {
            assert!(orig.contains(v.choose(&mut r).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn uniform_distribution_matches_range() {
        use crate::distributions::{Distribution, Uniform};
        let mut r = StdRng::seed_from_u64(5);
        let u = Uniform::new(0.0f64, 10.0);
        for _ in 0..1_000 {
            let v = u.sample(&mut r);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn os_rng_produces_entropy() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        OsRng.fill_bytes(&mut a);
        OsRng.fill_bytes(&mut b);
        assert_ne!(a, b);
        assert_ne!(a, [0u8; 32]);
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
