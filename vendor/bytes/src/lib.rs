//! Offline shim for the `bytes` crate (API subset).
//!
//! Implements `Bytes`, `BytesMut` and `BufMut` on top of `Vec<u8>` —
//! just the surface the `freqywm-ledger` encoding uses. No refcounted
//! zero-copy slicing; `freeze` simply transfers ownership.

use std::ops::{Deref, DerefMut};

/// Write-side buffer abstraction.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u64(&mut self, v: u64);
    fn put_u32(&mut self, v: u32);
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_slice(b"abc");
        b.put_u8(0xFF);
        let frozen = b.freeze();
        assert_eq!(
            &frozen[..],
            &[1, 2, 3, 4, 5, 6, 7, 8, b'a', b'b', b'c', 0xFF]
        );
        let again = BytesMut::from(&frozen[..]);
        assert_eq!(&again[..], &frozen[..]);
    }

    #[test]
    fn big_endian_u64() {
        let mut b = BytesMut::new();
        b.put_u64(1);
        assert_eq!(&b[..], &[0, 0, 0, 0, 0, 0, 0, 1]);
    }
}
