//! Sampling strategies: `select`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;

/// Strategy drawing uniformly from a fixed list of options.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.options[crate::rng_index(rng, self.options.len())].clone()
    }
}

/// `proptest::sample::select(vec![...])`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}
