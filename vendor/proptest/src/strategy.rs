//! The `Strategy` trait and the built-in strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values for property tests.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply samples a value from the deterministic test RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// String strategy from a simplified regex: a single character class
/// with an optional `{m}` / `{m,n}` quantifier, e.g. `"[a-z0-9]{1,20}"`.
/// Escapes `\n`, `\t`, `\r`, `\\`, `\"`, `\-`, `\]` are honoured inside
/// the class. Anything fancier panics — extend the parser when a test
/// needs more.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let len = crate::sample_usize_inclusive(rng, lo, hi);
        (0..len)
            .map(|_| chars[crate::rng_index(rng, chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let mut it = pattern.chars().peekable();
    if it.next()? != '[' {
        return None;
    }
    let mut chars: Vec<char> = Vec::new();
    loop {
        let c = it.next()?;
        match c {
            ']' => break,
            '\\' => {
                let e = it.next()?;
                chars.push(match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
            }
            _ => {
                // Range `a-z` when a dash follows and the class continues.
                if it.peek() == Some(&'-') {
                    let mut ahead = it.clone();
                    ahead.next(); // consume '-'
                    match ahead.peek() {
                        Some(&end) if end != ']' => {
                            it = ahead;
                            let end = it.next()?;
                            if (c as u32) > (end as u32) {
                                return None;
                            }
                            for v in (c as u32)..=(end as u32) {
                                chars.push(char::from_u32(v)?);
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                chars.push(c);
            }
        }
    }
    if chars.is_empty() {
        return None;
    }
    let rest: String = it.collect();
    if rest.is_empty() {
        return Some((chars, 1, 1));
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n: usize = body.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_classes_ranges_and_escapes() {
        let (chars, lo, hi) = parse_class_pattern("[a-c,=\\n\"\\\\ ]{1,20}").unwrap();
        assert_eq!(lo, 1);
        assert_eq!(hi, 20);
        for c in ['a', 'b', 'c', ',', '=', '\n', '"', '\\', ' '] {
            assert!(chars.contains(&c), "missing {c:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_class_pattern("abc").is_none());
        assert!(parse_class_pattern("[]").is_none());
        assert!(parse_class_pattern("[a]{2,1}").is_none());
    }

    #[test]
    fn no_quantifier_is_single_char() {
        let (_, lo, hi) = parse_class_pattern("[xy]").unwrap();
        assert_eq!((lo, hi), (1, 1));
    }
}
