//! Collection strategies: `vec`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: an exact `usize`, `lo..hi`
/// (half-open, as upstream) or `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty vec length range");
        SizeRange {
            lo,
            hi_inclusive: hi,
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = crate::sample_usize_inclusive(rng, self.size.lo, self.size.hi_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
