//! Offline shim for the `proptest` crate (API subset).
//!
//! Supports the slice of proptest this workspace uses: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!`, numeric range strategies,
//! [`collection::vec`], [`sample::select`], tuple strategies and a
//! single-character-class regex string strategy (`"[abc]{m,n}"`).
//!
//! Differences from upstream, deliberate for an offline shim:
//!
//! * no shrinking — a failing case panics with the sampled inputs
//!   reproducible from the deterministic per-test seed;
//! * default case count is 64 (upstream: 256) to keep debug-profile
//!   test runs fast; tests that need a specific count already set it
//!   via `ProptestConfig::with_cases`.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::Strategy;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG for a property test, seeded from the test path so
/// every run replays the same cases.
pub fn test_rng(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything a `proptest!` test body usually needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    /// Alias matching `proptest::prelude::prop`.
    pub use crate::{collection, sample};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                // Bodies are Result-valued as in upstream proptest, so
                // `return Ok(())` / `prop_assume!` work unchanged.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = __outcome {
                    panic!("property {} failed: {:?}", stringify!($name), e);
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Like `assert!`, inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
/// (Upstream rejects-and-resamples; skipping is equivalent for
/// deterministic non-shrinking execution.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Error type carried by a property body's `Result` (never constructed
/// by the shim's own macros; present so bodies can be `Result`-valued).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Used by the string strategy; public for the strategy module.
pub(crate) fn sample_usize_inclusive(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

pub(crate) fn rng_index(rng: &mut StdRng, len: usize) -> usize {
    debug_assert!(len > 0);
    (rng.next_u64() % len as u64) as usize
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Vec strategies respect both element and length bounds.
        #[test]
        fn vec_strategy_bounds(v in crate::collection::vec(1u64..10, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|&e| (1..10).contains(&e)));
        }

        #[test]
        fn exact_len_vec(v in crate::collection::vec(-1.0f64..1.0, 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn tuple_vec(v in crate::collection::vec((0usize..9, 1i64..50), 0..14)) {
            prop_assert!(v.len() < 14);
            for (a, b) in v {
                prop_assert!(a < 9);
                prop_assert!((1..50).contains(&b));
            }
        }

        #[test]
        fn select_picks_from_list(z in crate::sample::select(vec![7u64, 31, 131])) {
            prop_assert!([7u64, 31, 131].contains(&z));
        }

        #[test]
        fn string_regex_class(s in "[a-c0-1\\\\]{1,20}") {
            prop_assert!(!s.is_empty() && s.len() <= 20);
            prop_assert!(s.chars().all(|c| "abc01\\".contains(c)));
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        let mut a = crate::test_rng("x::y");
        let mut b = crate::test_rng("x::y");
        let mut c = crate::test_rng("x::z");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
