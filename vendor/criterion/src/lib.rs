//! Offline shim for the `criterion` crate (API subset).
//!
//! Implements the benchmarking surface the `freqywm-bench` crate uses —
//! `Criterion`, benchmark groups, `Bencher::iter`, `black_box`,
//! `BenchmarkId`, `Throughput` and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately light measurement
//! loop (median of short timed batches, one line of output per
//! benchmark). No plots, no statistics engine, no saved baselines;
//! the goal is that `cargo bench` runs and prints sane numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark (printed alongside timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    /// (total elapsed, iterations) accumulated by `iter`.
    measurement: Option<(Duration, u64)>,
    target_time: Duration,
}

impl Bencher {
    /// Times `f` adaptively: ramps the batch size until the batch takes
    /// long enough to trust the clock, then records the best batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find a batch size lasting ≥ ~1ms.
        let mut batch: u64 = 1;
        let calibration_floor = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= calibration_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Measurement: repeat batches until the time budget is spent,
        // keep the fastest batch (least scheduler noise).
        let deadline = Instant::now() + self.target_time;
        let mut best: Option<Duration> = None;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            total += took;
            iters += batch;
            best = Some(match best {
                Some(b) if b <= took => b,
                _ => took,
            });
        }
        if let Some(best) = best {
            // Report the fastest batch, scaled to per-iteration.
            self.measurement = Some((best, batch));
        } else {
            self.measurement = Some((total.max(Duration::from_nanos(1)), iters.max(1)));
        }
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let Some((elapsed, iters)) = bencher.measurement else {
        println!("{name:<40} (no measurement)");
        return;
    };
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let time = if per_iter < 1e-6 {
        format!("{:.1} ns", per_iter * 1e9)
    } else if per_iter < 1e-3 {
        format!("{:.2} µs", per_iter * 1e6)
    } else {
        format!("{:.3} ms", per_iter * 1e3)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => format!("  {:.0} elem/s", e as f64 / per_iter),
        None => String::new(),
    };
    println!("{name:<40} {time:>12}/iter{rate}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            measurement: None,
            target_time: self.target_time,
        };
        f(&mut b);
        report(&name, &b, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's adaptive loop ignores
    /// the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            measurement: None,
            target_time: self.criterion.target_time,
        };
        f(&mut b);
        report(&label, &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let mut b = Bencher {
            measurement: None,
            target_time: self.criterion.target_time,
        };
        f(&mut b, input);
        report(&label, &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            target_time: Duration::from_millis(10),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
