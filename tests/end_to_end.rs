//! Cross-crate integration tests: full marketplace pipelines spanning
//! generation, transformation, attacks, detection, dispute arbitration
//! and the fingerprint ledger.

use freqywm::prelude::*;
use freqywm_attacks::destroy::destroy_percentage;
use freqywm_attacks::sampling::sampling_attack;
use freqywm_data::synthetic::{power_law_counts, power_law_dataset, PowerLawConfig};
use freqywm_ledger::Ledger;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn zipf_hist(alpha: f64, tokens: usize, samples: usize) -> Histogram {
    Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: tokens,
        sample_size: samples,
        alpha,
    }))
}

#[test]
fn generate_serialise_detect_round_trip() {
    // Owner watermarks, stores the secret file, detects years later.
    let hist = zipf_hist(0.6, 300, 500_000);
    let params = GenerationParams::default().with_z(131);
    let out = Watermarker::new(params)
        .generate_histogram(&hist, Secret::from_label("e2e-roundtrip"))
        .unwrap();
    let stored = out.secrets.to_text();
    let restored = SecretList::from_text(&stored).unwrap();
    let detection = DetectionParams::default().with_t(0).with_k(restored.len());
    assert!(detect_histogram(&out.watermarked, &restored, &detection).accepted);
    // The unmarked original must not verify in full.
    assert!(!detect_histogram(&hist, &restored, &detection).accepted);
}

#[test]
fn dataset_level_pipeline_survives_attack_chain() {
    // Generate on raw tokens, then sample 40% and add ±1% noise — the
    // watermark must still be detectable with sane thresholds.
    let cfg = PowerLawConfig {
        distinct_tokens: 200,
        sample_size: 150_000,
        alpha: 0.6,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let data = power_law_dataset(&cfg, &mut rng);
    let (wdata, secrets, report) = Watermarker::new(GenerationParams::default().with_z(131))
        .watermark_dataset(&data, Secret::from_label("e2e-attacks"))
        .unwrap();
    assert!(report.ranking_preserved);

    // Attack 1: subsample 40% with scaled detection.
    let sampled = sampling_attack(
        &wdata,
        &secrets,
        &DetectionParams::default().with_t(4).with_k(1),
        0.4,
        &mut rng,
    );
    assert!(
        sampled.outcome.accept_rate() > 0.5,
        "40% sample, t=4: {}",
        sampled.outcome.accept_rate()
    );

    // Attack 2: ±1% destroy on the histogram.
    let attacked = destroy_percentage(&wdata.histogram(), 1.0, &mut rng);
    let d = detect_histogram(
        &attacked,
        &secrets,
        &DetectionParams::default()
            .with_t(4)
            .with_k(secrets.len() / 2),
    );
    assert!(
        d.accepted,
        "±1% noise, t=4: {}/{}",
        d.accepted_pairs, d.total_pairs
    );
}

#[test]
fn buyer_fingerprints_are_distinguishable_and_ledgered() {
    let hist = zipf_hist(0.6, 300, 400_000);
    let params = GenerationParams::default()
        .with_z(131)
        .with_exclude_free_pairs(true);
    let wm = Watermarker::new(params);
    let mut ledger = Ledger::new(b"integration-ledger");
    let copies: Vec<_> = (0..3)
        .map(|i| {
            let out = wm
                .generate_histogram(&hist, Secret::from_label(&format!("buyer-{i}")))
                .unwrap();
            ledger.register(
                1_000 + i,
                &format!("buyer-{i}"),
                out.secrets.to_text().as_bytes(),
            );
            out
        })
        .collect();
    ledger.verify_chain().unwrap();

    // Each buyer's copy carries exactly its own watermark in full.
    for (i, leak) in copies.iter().enumerate() {
        for (j, candidate) in copies.iter().enumerate() {
            let d = detect_histogram(
                &leak.watermarked,
                &candidate.secrets,
                &DetectionParams::default()
                    .with_t(0)
                    .with_k(candidate.secrets.len()),
            );
            assert_eq!(
                d.accepted,
                i == j,
                "leaked copy {i} vs fingerprint {j}: {}/{}",
                d.accepted_pairs,
                d.total_pairs
            );
        }
        // And the ledger maps the secret back to the buyer.
        let entry = ledger
            .find_fingerprint(leak.secrets.to_text().as_bytes())
            .expect("registered");
        assert_eq!(entry.subject, format!("buyer-{i}"));
    }
}

#[test]
fn dispute_pipeline_owner_wins() {
    let hist = zipf_hist(0.5, 400, 800_000);
    let wm = Watermarker::new(
        GenerationParams::default()
            .with_z(131)
            .with_exclude_free_pairs(true),
    );
    let owner_out = wm
        .generate_histogram(&hist, Secret::from_label("e2e-owner"))
        .unwrap();
    let pirate_claim = freqywm_attacks::rewatermark::rewatermark_attack(
        &owner_out.watermarked,
        &wm,
        Secret::from_label("e2e-pirate"),
    )
    .unwrap();
    let owner_claim = Claim {
        histogram: owner_out.watermarked.clone(),
        secrets: owner_out.secrets,
    };
    let params = DetectionParams::default()
        .with_t(0)
        .with_k((owner_claim.secrets.len() / 4).max(1));
    let ruling = judge_dispute(&owner_claim, &pirate_claim, &params);
    assert_eq!(ruling.verdict, Verdict::FirstParty);
}

#[test]
fn multiwatermark_then_ml_parity() {
    // Small-scale version of the Sec. VI experiment chain.
    let mut rng = StdRng::seed_from_u64(13);
    let log = freqywm_data::realworld::eyewnder(30_000, &mut rng);
    let wm = Watermarker::new(GenerationParams::default().with_z(131));
    let secrets = (0..3)
        .map(|i| Secret::from_label(&format!("e2e-mlwm-{i}")))
        .collect();
    let multi = multi_watermark(&wm, &log.urls().histogram(), secrets).unwrap();
    assert!(!multi.rounds.is_empty());
    let wlog = log.with_url_counts(multi.final_histogram().unwrap(), &mut rng);

    let cfg = freqywm_ml::TrainConfig {
        window: 4,
        epochs: 2,
        vocab_size: 32,
        embedding: 8,
        hidden: 12,
        max_examples: 4_000,
        ..Default::default()
    };
    let orig_tokens: Vec<Token> = log.urls().tokens().to_vec();
    let mark_tokens: Vec<Token> = wlog.urls().tokens().to_vec();
    let a = freqywm_ml::train_and_evaluate(&orig_tokens, &cfg);
    let b = freqywm_ml::train_and_evaluate(&mark_tokens, &cfg);
    assert!(
        (a.test_accuracy - b.test_accuracy).abs() < 0.10,
        "accuracy parity: {} vs {}",
        a.test_accuracy,
        b.test_accuracy
    );
}

#[test]
fn uniform_data_fails_loudly_everywhere() {
    // The paper's unsupported regime must be a clean error, not a
    // silent no-op watermark.
    let uniform = Histogram::from_counts((0..100).map(|i| (Token::new(format!("t{i}")), 1_000u64)));
    let err = Watermarker::default()
        .generate_histogram(&uniform, Secret::from_label("e2e-uniform"))
        .unwrap_err();
    assert!(matches!(err, freqywm::core::error::Error::NoEligiblePairs));
}

#[test]
fn csv_to_watermarked_table_pipeline() {
    // CSV in -> multi-dim watermark -> CSV out -> detect.
    let mut csv_text = String::from("age,workclass\n");
    let mut rng = StdRng::seed_from_u64(17);
    let table = freqywm_data::realworld::adult(8_000, &mut rng);
    for row in table.rows() {
        csv_text.push_str(&format!("{},{}\n", row[0], row[1]));
    }
    let parsed = freqywm_data::csv::parse_table(&csv_text).unwrap();
    let (wtable, secrets, _) = Watermarker::new(GenerationParams::default().with_z(31))
        .watermark_table(
            &parsed,
            &["age", "workclass"],
            Secret::from_label("e2e-csv"),
        )
        .unwrap();
    let out_text = freqywm_data::csv::write_table(&wtable);
    let reparsed = freqywm_data::csv::parse_table(&out_text).unwrap();
    let hist = reparsed.tokens_over(&["age", "workclass"]).histogram();
    let d = detect_histogram(
        &hist,
        &secrets,
        &DetectionParams::default().with_t(0).with_k(secrets.len()),
    );
    assert!(d.accepted);
}
