//! Executable versions of the paper's headline claims, at CI-friendly
//! scale. EXPERIMENTS.md holds the full-scale numbers; these tests pin
//! the *shapes* so a regression that breaks a reproduced result fails
//! the suite, not just the benchmark report.

use freqywm::prelude::*;
use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};

fn zipf_hist(alpha: f64, tokens: usize, samples: usize) -> Histogram {
    Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: tokens,
        sample_size: samples,
        alpha,
    }))
}

fn chosen_pairs(hist: &Histogram, params: GenerationParams, label: &str) -> usize {
    Watermarker::new(params)
        .generate_histogram(hist, Secret::from_label(label))
        .map(|o| o.report.chosen_pairs)
        .unwrap_or(0)
}

/// Fig. 2a shape: pairs ~0 at alpha ~0, rise to an interior maximum,
/// decline toward alpha = 1.
#[test]
fn fig2a_shape_interior_peak() {
    let params = GenerationParams::default().with_z(257).with_budget(2.0);
    let counts: Vec<usize> = [0.05, 0.5, 0.7, 1.0]
        .iter()
        .map(|&a| chosen_pairs(&zipf_hist(a, 300, 300_000), params, "fig2a-shape"))
        .collect();
    assert!(
        counts[0] < counts[1] / 4,
        "near-uniform data yields few pairs: {counts:?}"
    );
    assert!(counts[2] >= counts[1], "growth toward the peak: {counts:?}");
    assert!(counts[3] <= counts[2], "decline after the peak: {counts:?}");
}

/// Fig. 2b shape: smaller z, more pairs; heuristic gap closes at tiny z.
#[test]
fn fig2b_shape_z_monotone() {
    let hist = zipf_hist(0.5, 300, 300_000);
    let base = GenerationParams::default().with_budget(2.0);
    let at = |z: u64, sel: Selection| {
        chosen_pairs(&hist, base.with_z(z).with_selection(sel), "fig2b-shape")
    };
    let opt_small = at(10, Selection::Optimal);
    let opt_large = at(1031, Selection::Optimal);
    assert!(opt_small > opt_large, "{opt_small} vs {opt_large}");
    // Heuristic within 5% of optimal at z = 10 (paper: "very close").
    let grd_small = at(10, Selection::Greedy);
    assert!(
        grd_small * 100 >= opt_small * 95,
        "greedy {grd_small} vs optimal {opt_small} at z=10"
    );
}

/// Sec. IV-D shape: FreqyWM's distortion is orders of magnitude below
/// both baselines, and it alone preserves the ranking.
#[test]
fn baselines_lose_on_distortion_and_ranking() {
    use freqywm::baselines::{WmObt, WmObtConfig, WmRvs, WmRvsConfig};
    use freqywm::stats::rank::rank_churn;
    use freqywm::stats::similarity::cosine_similarity;

    let hist = zipf_hist(0.5, 300, 300_000);
    let fw = Watermarker::new(GenerationParams::default().with_z(131))
        .generate_histogram(&hist, Secret::from_label("claims-fw"))
        .unwrap();
    let (a, b) = hist.paired_counts(&fw.watermarked);
    let fw_dist = 1.0 - cosine_similarity(&a, &b);
    assert_eq!(rank_churn(&a, &b), 0, "FreqyWM preserves every rank");

    let obt = WmObt::new(WmObtConfig::default(), b"claims-obt");
    let marked = obt.embed(&hist);
    let (a, b) = hist.paired_counts(&marked);
    let obt_dist = 1.0 - cosine_similarity(&a, &b);
    assert!(rank_churn(&a, &b) > hist.len() / 10);

    let rvs = WmRvs::new(WmRvsConfig::default(), b"claims-rvs");
    let (marked, _) = rvs.embed(&hist);
    let (a, b) = hist.paired_counts(&marked);
    let rvs_dist = 1.0 - cosine_similarity(&a, &b);
    assert!(rank_churn(&a, &b) > hist.len() / 10);

    assert!(
        fw_dist * 100.0 < obt_dist && fw_dist * 100.0 < rvs_dist,
        "FreqyWM {fw_dist:.2e} must be >=100x below OBT {obt_dist:.2e} / RVS {rvs_dist:.2e}"
    );
}

/// Sec. V-B headline: at a 20% sample with a modest tolerance, the
/// detection rate clears 90%.
#[test]
fn sampling_20pct_exceeds_90pct_with_tolerance() {
    use freqywm::attacks::sampling::{detect_scaled, thin_histogram};
    use rand::SeedableRng;
    let hist = zipf_hist(0.5, 500, 500_000);
    let out = Watermarker::new(GenerationParams::default().with_z(131))
        .generate_histogram(&hist, Secret::from_label("claims-sampling"))
        .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sample = thin_histogram(&out.watermarked, 0.2, &mut rng);
    let d = detect_scaled(
        &sample,
        &out.secrets,
        &DetectionParams::default().with_t(10).with_k(1),
        0.2,
    );
    assert!(d.accept_rate() > 0.9, "rate {}", d.accept_rate());
}

/// Sec. V-C headline: a watermark costing ~1e-4 % distortion survives a
/// 90 %-modification re-ordering attack that destroys the data's
/// ranking utility.
#[test]
fn destroy_90pct_watermark_outlives_data() {
    use freqywm::attacks::destroy::destroy_with_reordering;
    use freqywm::stats::rank::rank_churn;
    use rand::SeedableRng;
    let hist = zipf_hist(0.5, 500, 500_000);
    let out = Watermarker::new(GenerationParams::default().with_z(131))
        .generate_histogram(&hist, Secret::from_label("claims-destroy"))
        .unwrap();
    assert!(
        100.0 - out.report.similarity_pct < 1e-3,
        "tiny embedding distortion: {}",
        100.0 - out.report.similarity_pct
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let attacked = destroy_with_reordering(&out.watermarked, 90.0, &mut rng);
    let d = detect_histogram(
        &attacked,
        &out.secrets,
        &DetectionParams::default()
            .with_t(4)
            .with_k(out.secrets.len() / 2),
    );
    assert!(
        d.accepted,
        "watermark survives: {}/{}",
        d.accepted_pairs, d.total_pairs
    );
    let (a, b) = out.watermarked.paired_counts(&attacked);
    assert!(
        rank_churn(&a, &b) > a.len() * 8 / 10,
        "…while the attack destroyed the ranking"
    );
}

/// Sec. VI headline: ten stacked watermarks cost far less than
/// 10 × budget.
#[test]
fn ten_watermarks_cost_far_below_linear() {
    let hist = zipf_hist(0.5, 300, 300_000);
    let wm = Watermarker::new(GenerationParams::default().with_z(131).with_budget(2.0));
    let secrets = (0..10)
        .map(|i| Secret::from_label(&format!("claims-multi-{i}")))
        .collect();
    let multi = multi_watermark(&wm, &hist, secrets).unwrap();
    assert!(multi.rounds.len() >= 8);
    let d = multi.cumulative_distortion_pct(&hist);
    assert!(d < 0.2, "cumulative distortion {d}% (10 x b would be 20%)");
}

/// Sec. III-B4 headline: the false-positive probability collapses as k
/// grows and as t shrinks.
#[test]
fn false_positive_limits() {
    use freqywm::stats::poisson_binomial::{pair_false_positive_prob, PoissonBinomial};
    let s_values: Vec<u64> = (0..50).map(|i| 2 + (i * 37) % 129).collect();
    let tail = |t: u64, k: usize| {
        let probs: Vec<f64> = s_values
            .iter()
            .map(|&s| pair_false_positive_prob(t, s))
            .collect();
        PoissonBinomial::new(probs).survival(k)
    };
    // In k: monotone collapse to ~0 at k = n.
    assert!(tail(4, 10) > tail(4, 25));
    assert!(tail(4, 50) < 1e-6);
    // In t: monotone collapse to 0 at t = 0.
    assert!(tail(0, 1) == 0.0);
    assert!(tail(1, 10) < tail(8, 10));
}

/// Guess-attack headline: forged secrets never reach a majority quorum.
#[test]
fn guess_attack_hopeless() {
    use freqywm::attacks::guess::guess_attack;
    use rand::SeedableRng;
    let hist = zipf_hist(0.5, 300, 300_000);
    let out = Watermarker::new(GenerationParams::default().with_z(131))
        .generate_histogram(&hist, Secret::from_label("claims-guess"))
        .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let k = (out.secrets.len() / 2).max(1);
    let report = guess_attack(
        &out.watermarked,
        out.secrets.z,
        &DetectionParams::default().with_t(0).with_k(k),
        300,
        out.secrets.len(),
        &mut rng,
    );
    assert_eq!(report.successes, 0);
    assert!(report.best_accepted_pairs < k);
}
