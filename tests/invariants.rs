//! Property-based cross-crate invariants: the guarantees FreqyWM makes
//! must hold for arbitrary (valid) inputs, not just the paper's
//! parameter points.

use freqywm::prelude::*;
use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
use proptest::prelude::*;

fn zipf_hist(alpha: f64, tokens: usize, samples: usize) -> Histogram {
    Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: tokens,
        sample_size: samples,
        alpha,
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every successful generation satisfies the paper's three core
    /// guarantees: embedding rule exact, similarity within budget,
    /// weak ranking preserved.
    #[test]
    fn generation_guarantees(
        alpha in 0.3f64..1.0,
        tokens in 40usize..150,
        z in proptest::sample::select(vec![7u64, 31, 131, 331]),
        budget in proptest::sample::select(vec![0.5f64, 2.0, 10.0]),
        seed in 0u64..500,
    ) {
        let hist = zipf_hist(alpha, tokens, tokens * 700);
        let params = GenerationParams::default().with_z(z).with_budget(budget);
        let secret = Secret::from_label(&format!("inv-{seed}"));
        let out = match Watermarker::new(params).generate_histogram(&hist, secret) {
            Ok(out) => out,
            Err(_) => return Ok(()), // no eligible pairs for this draw
        };
        // (1) Embedding rule: every stored pair is exactly watermarked.
        for (a, b) in &out.secrets.pairs {
            let fa = out.watermarked.count(a).expect("token kept");
            let fb = out.watermarked.count(b).expect("token kept");
            let s = freqywm::crypto::prf::pair_modulus(
                &out.secrets.secret, a.as_bytes(), b.as_bytes(), z);
            prop_assert!(s >= 2);
            prop_assert_eq!(fa.abs_diff(fb) % s, 0);
            // No token erased (our last-token cap).
            prop_assert!(fa > 0 && fb > 0);
        }
        // (2) Similarity constraint.
        let (before, after) = hist.paired_counts(&out.watermarked);
        let sim = freqywm::stats::similarity::cosine_similarity(&before, &after) * 100.0;
        prop_assert!(sim + 1e-9 >= 100.0 - budget, "sim {} budget {}", sim, budget);
        prop_assert!((sim - out.report.similarity_pct).abs() < 1e-6);
        // (3) Ranking constraint (weak order).
        prop_assert!(freqywm::stats::rank::ranking_preserved(&before, &after));
        // (4) Detection round-trips at the strictest setting.
        let d = detect_histogram(
            &out.watermarked,
            &out.secrets,
            &DetectionParams::default().with_t(0).with_k(out.secrets.len()),
        );
        prop_assert!(d.accepted);
    }

    /// The optimal selector never chooses fewer pairs than either
    /// heuristic (the Definition-1 optimality claim).
    #[test]
    fn optimal_dominates_heuristics(
        alpha in 0.4f64..0.9,
        z in proptest::sample::select(vec![31u64, 131]),
        seed in 0u64..200,
    ) {
        let hist = zipf_hist(alpha, 80, 60_000);
        let secret = Secret::from_label(&format!("dom-{seed}"));
        let mk = |sel| {
            Watermarker::new(GenerationParams::default().with_z(z).with_selection(sel))
                .generate_histogram(&hist, secret.clone())
                .map(|o| o.report.chosen_pairs)
                .unwrap_or(0)
        };
        let opt = mk(Selection::Optimal);
        prop_assert!(opt >= mk(Selection::Greedy));
        let rnd = mk(Selection::Random { seed });
        prop_assert!(opt >= rnd);
    }

    /// Secret lists survive serialisation byte-for-byte, including
    /// adversarial token content.
    #[test]
    fn secret_serialisation_total(
        tokens in proptest::collection::vec("[a-zA-Z0-9,=\\n\"\\\\ ]{1,20}", 1..20),
        z in 2u64..10_000,
    ) {
        let pairs: Vec<(Token, Token)> = tokens
            .chunks(2)
            .filter(|c| c.len() == 2 && c[0] != c[1])
            .map(|c| (Token::new(c[0].clone()), Token::new(c[1].clone())))
            .collect();
        let secrets = SecretList::new(pairs, Secret::from_label("ser"), z);
        let back = SecretList::from_text(&secrets.to_text()).unwrap();
        prop_assert_eq!(back, secrets);
    }

    /// Detection monotonicity: accepted pairs never decrease as t grows
    /// or as the rule relaxes from strict to symmetric.
    #[test]
    fn detection_monotone(
        alpha in 0.4f64..0.9,
        noise_seed in 0u64..100,
    ) {
        let hist = zipf_hist(alpha, 100, 80_000);
        let out = match Watermarker::new(GenerationParams::default().with_z(131))
            .generate_histogram(&hist, Secret::from_label("mono"))
        {
            Ok(o) => o,
            Err(_) => return Ok(()),
        };
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(noise_seed);
        let attacked = freqywm_attacks::destroy::destroy_percentage(
            &out.watermarked, 2.0, &mut rng);
        let mut prev = 0usize;
        for t in [0u64, 1, 2, 4, 8, 16] {
            let strict = detect_histogram(
                &attacked,
                &out.secrets,
                &DetectionParams::default()
                    .with_t(t)
                    .with_k(1)
                    .with_rule(DetectionRule::Strict),
            );
            let symmetric = detect_histogram(
                &attacked,
                &out.secrets,
                &DetectionParams::default().with_t(t).with_k(1),
            );
            prop_assert!(symmetric.accepted_pairs >= strict.accepted_pairs);
            prop_assert!(symmetric.accepted_pairs >= prev);
            prev = symmetric.accepted_pairs;
        }
    }

    /// Ledger integrity is total: any single-field mutation breaks
    /// verification.
    #[test]
    fn ledger_tamper_evidence(
        n in 2usize..10,
        victim in 0usize..10,
        field in 0usize..3,
    ) {
        let mut ledger = freqywm_ledger::Ledger::new(b"prop-ledger");
        for i in 0..n {
            ledger.register(i as u64, &format!("subject-{i}"), format!("m{i}").as_bytes());
        }
        prop_assume!(victim < n);
        let broken = ledger.clone();
        // Rebuild with one mutated entry by re-registering into a fresh
        // ledger is not possible from outside; mutate via the public
        // clone + entries accessor instead.
        let entries = broken.entries().to_vec();
        let mut tampered = freqywm_ledger::Ledger::new(b"prop-ledger");
        for (i, e) in entries.iter().enumerate() {
            let (ts, subject, material) = if i == victim {
                match field {
                    0 => (e.timestamp + 1, e.subject.clone(), format!("m{i}")),
                    1 => (e.timestamp, format!("{}x", e.subject), format!("m{i}")),
                    _ => (e.timestamp, e.subject.clone(), format!("m{i}-forged")),
                }
            } else {
                (e.timestamp, e.subject.clone(), format!("m{i}"))
            };
            tampered.register(ts, &subject, material.as_bytes());
        }
        // A re-built ledger is internally consistent…
        prop_assert!(tampered.verify_chain().is_ok());
        // …but its fingerprints diverge from the original chain's.
        let changed = ledger
            .entries()
            .iter()
            .zip(tampered.entries())
            .any(|(a, b)| a.hash() != b.hash());
        prop_assert!(changed);
        prop_assert!(ledger.verify_chain().is_ok());
    }
}
