//! Quickstart: watermark a click-stream, verify it, and see that the
//! original does not verify.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use freqywm::prelude::*;
use freqywm_data::synthetic::{power_law_dataset, PowerLawConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A dataset of repeating tokens. Here: 200k visits over 500
    //    domains following a power law (α = 0.6) — the kind of
    //    click-stream a data marketplace actually trades.
    let mut rng = StdRng::seed_from_u64(2024);
    let dataset = power_law_dataset(
        &PowerLawConfig {
            distinct_tokens: 500,
            sample_size: 200_000,
            alpha: 0.6,
        },
        &mut rng,
    );
    println!(
        "original dataset: {} tokens, {} distinct",
        dataset.len(),
        dataset.histogram().len()
    );

    // 2. Generate the watermark. The budget bounds the distortion:
    //    cosine similarity stays >= (100 - b)% = 98%.
    let params = GenerationParams::default().with_budget(2.0).with_z(131);
    let secret = Secret::from_label("quickstart-demo"); // Secret::generate(&mut OsRng) in production
    let (watermarked, secrets, report) = Watermarker::new(params)
        .watermark_dataset(&dataset, secret)
        .expect("skewed data always has eligible pairs");

    println!("\nwatermark generation:");
    println!("  eligible pairs : {}", report.eligible_pairs);
    println!("  matched pairs  : {}", report.matched_pairs);
    println!("  chosen pairs   : {}", report.chosen_pairs);
    println!("  similarity     : {:.6}%", report.similarity_pct);
    println!("  distortion     : {:.6}%", 100.0 - report.similarity_pct);
    println!("  tokens changed : {} instances", report.total_change);
    println!("  ranking intact : {}", report.ranking_preserved);

    // 3. Detection. The owner keeps `secrets` (= L_sc: the pair list,
    //    the 256-bit secret R and the modulo base z).
    let strict = DetectionParams::default().with_t(0).with_k(secrets.len());
    let on_watermarked = detect_dataset(&watermarked, &secrets, &strict);
    println!(
        "\ndetection on the watermarked copy : {} ({}/{} pairs exact)",
        if on_watermarked.accepted {
            "ACCEPT"
        } else {
            "REJECT"
        },
        on_watermarked.accepted_pairs,
        on_watermarked.total_pairs
    );

    let on_original = detect_dataset(&dataset, &secrets, &strict);
    println!(
        "detection on the original data    : {} ({}/{} pairs exact)",
        if on_original.accepted {
            "ACCEPT"
        } else {
            "REJECT"
        },
        on_original.accepted_pairs,
        on_original.total_pairs
    );

    // 4. Secrets survive serialisation (e.g. to an escrow file).
    let text = secrets.to_text();
    let restored = SecretList::from_text(&text).expect("round-trip");
    assert_eq!(restored, secrets);
    println!("\nsecret list serialises to {} bytes", text.len());
}
