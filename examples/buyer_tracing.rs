//! Buyer tracing with per-buyer fingerprints and the immutable ledger
//! (the paper's Sec. I use case): the seller issues a differently
//! watermarked copy to every buyer and registers each fingerprint in a
//! hash-chained index; when a leaked copy surfaces, the watermark
//! identifies the culprit, and the ledger's chronology settles
//! re-watermarking disputes.
//!
//! ```sh
//! cargo run --release --example buyer_tracing
//! ```

use freqywm::prelude::*;
use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
use freqywm_ledger::Ledger;

fn main() {
    // The master dataset the seller monetises.
    let master = Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: 800,
        sample_size: 1_000_000,
        alpha: 0.6,
    }));
    println!(
        "master dataset: {} distinct tokens, {} rows",
        master.len(),
        master.total()
    );

    // One watermark per buyer; free-pair exclusion hardens disputes.
    let params = GenerationParams::default()
        .with_z(131)
        .with_exclude_free_pairs(true);
    let watermarker = Watermarker::new(params);
    let mut ledger = Ledger::new(b"seller-ledger-key");
    let buyers = ["acme-analytics", "globex-data", "initech-ml"];
    let mut copies = Vec::new();
    for (i, buyer) in buyers.iter().enumerate() {
        let secret = Secret::from_label(&format!("sale-to-{buyer}"));
        let out = watermarker
            .generate_histogram(&master, secret)
            .expect("eligible pairs exist");
        let registered_at = 1_700_000_000 + i as u64 * 86_400;
        let idx = ledger.register(registered_at, buyer, out.secrets.to_text().as_bytes());
        println!(
            "issued copy to {buyer}: {} pairs, distortion {:.6}%, ledger entry #{idx}",
            out.report.chosen_pairs,
            100.0 - out.report.similarity_pct
        );
        copies.push((buyer, out));
    }
    ledger.verify_chain().expect("ledger intact");
    println!(
        "ledger verified: {} entries, hash chain intact\n",
        ledger.len()
    );

    // A copy leaks. Which buyer leaked it?
    let leaked = copies[1].1.watermarked.clone(); // globex's copy
    println!("a leaked copy appears on a rival marketplace…");
    let detection = DetectionParams::default().with_t(0).with_k(1);
    for (buyer, out) in &copies {
        let d = detect_histogram(&leaked, &out.secrets, &detection);
        let exact = d.accepted_pairs == d.total_pairs;
        println!(
            "  {buyer:<16} {:>3}/{:<3} pairs exact {}",
            d.accepted_pairs,
            d.total_pairs,
            if exact {
                "<== full watermark: the leaker"
            } else {
                ""
            }
        );
    }

    // The leaker tries a false claim: re-watermark and assert ownership.
    let pirate_secret = Secret::from_label("globex-false-claim");
    let pirate_out = watermarker
        .generate_histogram(&leaked, pirate_secret)
        .expect("still watermarkable");
    let owner_claim = Claim {
        histogram: copies[1].1.watermarked.clone(),
        secrets: copies[1].1.secrets.clone(),
    };
    let pirate_claim = Claim {
        histogram: pirate_out.watermarked.clone(),
        secrets: pirate_out.secrets.clone(),
    };
    let judge_params = DetectionParams::default()
        .with_t(0)
        .with_k((owner_claim.secrets.len() / 4).max(1));
    let ruling = judge_dispute(&owner_claim, &pirate_claim, &judge_params);
    println!("\ndispute: seller vs re-watermarking pirate");
    println!(
        "  seller's secret : on own data {}/{} pairs, on pirate's {}/{}",
        ruling.a_on_a.accepted_pairs,
        ruling.a_on_a.total_pairs,
        ruling.a_on_b.accepted_pairs,
        ruling.a_on_b.total_pairs
    );
    println!(
        "  pirate's secret : on own data {}/{} pairs, on seller's {}/{}",
        ruling.b_on_b.accepted_pairs,
        ruling.b_on_b.total_pairs,
        ruling.b_on_a.accepted_pairs,
        ruling.b_on_a.total_pairs
    );
    println!("  verdict         : {:?}", ruling.verdict);
    assert_eq!(ruling.verdict, Verdict::FirstParty);

    // And the ledger's chronology corroborates it.
    let order = ledger
        .earlier_of(
            owner_claim.secrets.to_text().as_bytes(),
            pirate_claim.secrets.to_text().as_bytes(),
        )
        .map(|o| format!("{o:?}"))
        .unwrap_or_else(|| "pirate's fingerprint was never registered".into());
    println!("  ledger evidence : {order}");
}
