//! Robustness tour: run the paper's four attacks against one
//! watermarked dataset and report what survives (Sec. V).
//!
//! ```sh
//! cargo run --release --example attack_robustness
//! ```

use freqywm::prelude::*;
use freqywm_attacks::destroy::{
    destroy_percentage, destroy_with_reordering, destroy_within_boundaries,
};
use freqywm_attacks::guess::guess_attack;
use freqywm_attacks::sampling::{detect_scaled, thin_histogram};
use freqywm_data::synthetic::{power_law_counts, PowerLawConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's robustness testbed: α = 0.5, 1K tokens, 1M samples.
    let hist = Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: 1_000,
        sample_size: 1_000_000,
        alpha: 0.5,
    }));
    let params = GenerationParams::default().with_z(131).with_budget(2.0);
    let out = Watermarker::new(params)
        .generate_histogram(&hist, Secret::from_label("robustness-demo"))
        .expect("eligible pairs exist");
    println!(
        "watermarked: {} pairs, distortion {:.6}%\n",
        out.report.chosen_pairs,
        100.0 - out.report.similarity_pct
    );
    let secrets = &out.secrets;
    let mut rng = StdRng::seed_from_u64(5);

    // --- Sampling attack (Sec. V-B) ---
    println!("sampling attack (scaled detection, t = 4):");
    for pct in [50.0, 20.0, 5.0, 1.0] {
        let frac = pct / 100.0;
        let sample = thin_histogram(&out.watermarked, frac, &mut rng);
        let d = detect_scaled(
            &sample,
            secrets,
            &DetectionParams::default().with_t(4).with_k(1),
            frac,
        );
        println!(
            "  {pct:>5.1}% sample: {:>5.1}% of pairs verified, {} distinct tokens survive",
            d.accept_rate() * 100.0,
            sample.len()
        );
    }

    // --- Destroy attacks (Sec. V-C) ---
    println!("\ndestroy attacks (t = 4):");
    let t4 = DetectionParams::default().with_t(4).with_k(1);
    let weak = destroy_percentage(&out.watermarked, 1.0, &mut rng);
    let dw = detect_histogram(&weak, secrets, &t4);
    println!(
        "  ±1% of boundaries (no re-ordering): {:>5.1}% verified",
        dw.accept_rate() * 100.0
    );
    let strong = destroy_within_boundaries(&out.watermarked, &mut rng);
    let ds = detect_histogram(&strong, secrets, &t4);
    println!(
        "  random within boundaries          : {:>5.1}% verified",
        ds.accept_rate() * 100.0
    );
    for pct in [10.0, 50.0, 90.0] {
        let re = destroy_with_reordering(&out.watermarked, pct, &mut rng);
        let dr = detect_histogram(&re, secrets, &t4);
        let (b, a) = out.watermarked.paired_counts(&re);
        let churn = freqywm_stats::rank::rank_churn(&b, &a);
        println!(
            "  ±{pct:>4.0}% with re-ordering          : {:>5.1}% verified ({} ranks destroyed — data utility gone)",
            dr.accept_rate() * 100.0,
            churn
        );
    }

    // --- Guess attack (Sec. V-A) ---
    println!("\nguess attack (forged secrets, t = 0, k = 75% of pairs):");
    let k = (secrets.len() * 3 / 4).max(1);
    let report = guess_attack(
        &out.watermarked,
        secrets.z,
        &DetectionParams::default().with_t(0).with_k(k),
        500,
        secrets.len(),
        &mut rng,
    );
    println!(
        "  {} attempts, {} successes (best attempt verified {}/{} pairs, needed {k})",
        report.attempts,
        report.successes,
        report.best_accepted_pairs,
        secrets.len()
    );
    assert_eq!(report.successes, 0);

    // --- False-positive control (the paper's Fig. 5 orange line) ---
    // The chosen pairs' moduli are small on this data (the selector
    // prefers small remainders, hence small s), so once t reaches s/2 a
    // pair verifies on ANY data — exactly why the paper insists t and k
    // must be chosen between the false-positive and false-negative
    // curves. The modulus floor (`min_modulus`) widens that corridor.
    println!("\nfalse-positive control (non-watermarked data, same token space, α = 0.7):");
    let other = Histogram::from_counts(power_law_counts(&PowerLawConfig {
        distinct_tokens: 1_000,
        sample_size: 1_000_000,
        alpha: 0.7,
    }));
    for t in [0u64, 4, 10] {
        let d = detect_histogram(
            &other,
            secrets,
            &DetectionParams::default().with_t(t).with_k(1),
        );
        println!(
            "  t = {t:>2}: {:>5.1}% of pairs falsely verified",
            d.accept_rate() * 100.0
        );
    }
    let mut s_values: Vec<u64> = secrets
        .pairs
        .iter()
        .map(|(a, b)| {
            freqywm_crypto::prf::pair_modulus(
                &secrets.secret,
                a.as_bytes(),
                b.as_bytes(),
                secrets.z,
            )
        })
        .collect();
    s_values.sort_unstable();
    println!(
        "  (chosen moduli: min {}, median {}, max {} — t must stay well below s/2)",
        s_values.first().unwrap(),
        s_values[s_values.len() / 2],
        s_values.last().unwrap()
    );
}
