//! A data-marketplace scenario on the simulated eyeWnder click-stream:
//! the seller watermarks the browsing log before listing it, a buyer
//! re-sells a pirated copy, and the marketplace detects the watermark
//! — even though the log's analytic value (trend / seasonality /
//! daily-volume features, Sec. VI) is untouched.
//!
//! ```sh
//! cargo run --release --example clickstream_marketplace
//! ```

use freqywm::prelude::*;
use freqywm_data::realworld::eyewnder;
use freqywm_stats::decompose::{decompose_additive, max_abs_diff, series_correlation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // 120k browsing events over 84 days, 11.5k distinct URLs.
    let log = eyewnder(120_000, &mut rng);
    let urls = log.urls();
    println!(
        "eyeWnder-style click-stream: {} events, {} distinct URLs, {} days",
        urls.len(),
        urls.histogram().len(),
        log.span_days()
    );

    // Seller watermarks the URL frequencies (z = 131, b = 2 as in the
    // paper's real-data validation), with two hardening knobs beyond
    // the paper: free-pair exclusion (pairs that hold by chance carry
    // no evidence) and a modulus floor (pairs with tiny s_ij verify on
    // anything once t reaches s/2 — see EXPERIMENTS.md).
    let params = GenerationParams::default()
        .with_z(131)
        .with_budget(2.0)
        .with_exclude_free_pairs(true)
        .with_min_modulus(8);
    let secret = Secret::from_label("marketplace-listing-001");
    let out = Watermarker::new(params)
        .generate_histogram(&urls.histogram(), secret)
        .expect("click-streams are heavy-tailed");
    println!(
        "\nwatermark: |Le| = {}, chosen pairs = {}, similarity = {:.6}%",
        out.report.eligible_pairs, out.report.chosen_pairs, out.report.similarity_pct
    );

    // Carry the watermark through to the timestamped log.
    let watermarked_log = log.with_url_counts(&out.watermarked, &mut rng);

    // --- Utility check: the features an analyst buys the data for ---
    let days = log.span_days();
    let before = log.daily_counts(days);
    let after = watermarked_log.daily_counts(days);
    let d_before = decompose_additive(&before, 7);
    let d_after = decompose_additive(&after, 7);
    println!("\nanalytic utility after watermarking (daily series, weekly period):");
    println!(
        "  daily volume   : correlation {:.6}, max abs diff {:.1} visits",
        series_correlation(&before, &after),
        max_abs_diff(&before, &after)
    );
    println!(
        "  trend          : correlation {:.6}",
        series_correlation(&d_before.trend, &d_after.trend)
    );
    println!(
        "  seasonality    : correlation {:.6}",
        series_correlation(&d_before.seasonal, &d_after.seasonal)
    );

    // --- Piracy: the buyer re-lists the full log on a rival market ---
    // (Heavily subsampled copies of THIS dataset are a different story:
    // its tail counts are small, so sampling noise swamps the moduli —
    // the paper's Sec. V-B sampling results live in the 1M-sample
    // synthetic regime; see `exp_sampling`.)
    let pirated = watermarked_log.urls();
    println!(
        "\npirate re-lists the full watermarked log: {} events",
        pirated.len()
    );
    let detection = DetectionParams::default()
        .with_t(0)
        .with_k((out.secrets.len() / 2).max(1));
    let verdict = detect_dataset(&pirated, &out.secrets, &detection);
    println!(
        "marketplace detection on the pirated copy: {} ({}/{} pairs exact, k = {})",
        if verdict.accepted {
            "ACCEPT — pirated copy identified"
        } else {
            "REJECT"
        },
        verdict.accepted_pairs,
        verdict.total_pairs,
        detection.k
    );
    assert!(
        verdict.accepted,
        "a verbatim copy must carry the full watermark"
    );

    // An innocent third-party click-stream (different popularity law)
    // does not trigger detection.
    let innocent = eyewnder(120_000, &mut StdRng::seed_from_u64(999));
    let innocent_check = detect_dataset(&innocent.urls(), &out.secrets, &detection);
    println!(
        "detection on an unrelated click-stream   : {} ({}/{} pairs exact)",
        if innocent_check.accepted {
            "ACCEPT (!)"
        } else {
            "REJECT — no false claim"
        },
        innocent_check.accepted_pairs,
        innocent_check.total_pairs
    );
    assert!(!innocent_check.accepted);
}
