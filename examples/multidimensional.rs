//! Multi-dimensional watermarking (Sec. IV-C): tokens that combine
//! several attributes of a census-like table, plus the Sec. VI remedy
//! for wide-range numeric data (bucketization).
//!
//! ```sh
//! cargo run --release --example multidimensional
//! ```

use freqywm::prelude::*;
use freqywm_data::bucketize::{Bucketizer, Policy};
use freqywm_data::realworld::adult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let table = adult(32_561, &mut rng);
    println!(
        "census table: {} rows, columns {:?}",
        table.len(),
        table.columns()
    );

    let params = GenerationParams::default().with_z(131).with_budget(2.0);
    let watermarker = Watermarker::new(params);

    // --- Single-attribute token: Age (73 distinct values) ---
    let age_hist = table.tokens_over(&["age"]).histogram();
    let age_out = watermarker
        .generate_histogram(&age_hist, Secret::from_label("adult-age"))
        .expect("age histogram is skewed");
    println!(
        "\n[age] tokens: {} distinct, |Le| = {}, chosen = {}, similarity = {:.4}%",
        age_hist.len(),
        age_out.report.eligible_pairs,
        age_out.report.chosen_pairs,
        age_out.report.similarity_pct
    );

    // --- Composite token: [age, workclass] (Sec. IV-C) ---
    let (wtable, secrets, report) = watermarker
        .watermark_table(
            &table,
            &["age", "workclass"],
            Secret::from_label("adult-multi"),
        )
        .expect("composite histogram is skewed");
    let multi_hist = table.tokens_over(&["age", "workclass"]).histogram();
    println!(
        "[age, workclass] tokens: {} distinct, |Le| = {}, chosen = {}, similarity = {:.4}%",
        multi_hist.len(),
        report.eligible_pairs,
        report.chosen_pairs,
        report.similarity_pct
    );

    // Added rows duplicate carrier rows, so every row still has a full
    // attribute set (the paper's semantic-consistency discussion).
    assert!(wtable
        .rows()
        .iter()
        .all(|r| r.len() == table.columns().len()));
    println!(
        "transformed table: {} rows ({}), all rows semantically complete",
        wtable.len(),
        if wtable.len() >= table.len() {
            format!("+{}", wtable.len() - table.len())
        } else {
            format!("-{}", table.len() - wtable.len())
        }
    );

    // Detection on the transformed table.
    let suspect = wtable.tokens_over(&["age", "workclass"]).histogram();
    let d = detect_histogram(
        &suspect,
        &secrets,
        &DetectionParams::default().with_t(0).with_k(secrets.len()),
    );
    println!(
        "detection on the watermarked table: {} ({}/{} pairs exact)",
        if d.accepted { "ACCEPT" } else { "REJECT" },
        d.accepted_pairs,
        d.total_pairs
    );
    assert!(d.accepted);

    // --- Challenging data: wide-range numeric values (Sec. VI) ---
    // Sales amounts with decimals: values never repeat, so frequencies
    // are all 1 and FreqyWM has nothing to modulate…
    let sales: Vec<f64> = (0..50_000)
        .map(|_| (rng.gen::<f64>().powi(3)) * 10_000.0 + rng.gen::<f64>())
        .collect();
    let raw_hist = Histogram::from_tokens(sales.iter().map(|v| Token::new(format!("{v:.2}"))));
    println!(
        "\nsales dataset: {} values, {} distinct — raw data is unwatermarkable",
        sales.len(),
        raw_hist.len()
    );

    // …but bucketizing first restores a watermarkable histogram.
    // Equal-WIDTH buckets keep the sales skew (equal-frequency buckets
    // would produce a near-uniform histogram — the regime FreqyWM
    // explicitly cannot watermark).
    let bucketizer = Bucketizer::fit(&sales, Policy::EqualWidth(64));
    let bucket_data = bucketizer.tokenize(&sales);
    let bucket_hist = bucket_data.histogram();
    let bucket_out = watermarker
        .generate_histogram(&bucket_hist, Secret::from_label("sales-buckets"))
        .expect("bucketized histogram has variation");
    println!(
        "after equal-width bucketization into {} buckets: |Le| = {}, chosen = {}, similarity = {:.4}%",
        bucket_hist.len(),
        bucket_out.report.eligible_pairs,
        bucket_out.report.chosen_pairs,
        bucket_out.report.similarity_pct
    );
}
